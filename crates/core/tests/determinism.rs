//! Bit-for-bit determinism: the whole stack (graph construction included)
//! is a pure function of its configuration and the schedule seed — the
//! property every debugging and experiment workflow rests on.

use exsel_core::{
    AdaptiveRename, AlmostAdaptive, BasicRename, EfficientRename, PolyLogRename, Rename,
    RenameConfig,
};
use exsel_shm::RegAlloc;
use exsel_sim::{policy::RandomPolicy, SimBuilder};

fn run_once<R: Rename>(algo: &R, regs: usize, k: usize, seed: u64) -> (Vec<Option<u64>>, Vec<u64>) {
    let outcome = SimBuilder::new(regs, Box::new(RandomPolicy::new(seed))).run(k, |ctx| {
        algo.rename(ctx, ctx.pid().0 as u64 * 31 + 5)
            .map(|o| o.name())
    });
    (
        outcome
            .results
            .into_iter()
            .map(|r| r.ok().flatten())
            .collect(),
        outcome.steps,
    )
}

macro_rules! determinism_test {
    ($name:ident, $build:expr) => {
        #[test]
        fn $name() {
            let k = 4;
            let build = $build;
            let mut a1 = RegAlloc::new();
            let algo1 = build(&mut a1);
            let mut a2 = RegAlloc::new();
            let algo2 = build(&mut a2);
            assert_eq!(a1.total(), a2.total(), "layout must be deterministic");
            for seed in [0u64, 7, 99] {
                let r1 = run_once(&algo1, a1.total(), k, seed);
                let r2 = run_once(&algo2, a2.total(), k, seed);
                assert_eq!(r1, r2, "seed {seed}: executions diverged");
            }
            // And different seeds may differ (schedules are real):
            let r0 = run_once(&algo1, a1.total(), k, 0);
            let mut any_diff = false;
            for seed in 1..20 {
                if run_once(&algo1, a1.total(), k, seed) != r0 {
                    any_diff = true;
                    break;
                }
            }
            // Step counts at least must vary across schedules for
            // contention-sensitive algorithms; tolerate fully-stable ones.
            let _ = any_diff;
        }
    };
}

determinism_test!(basic_rename_deterministic, |a: &mut RegAlloc| {
    BasicRename::new(a, 128, 4, &RenameConfig::with_seed(1))
});
determinism_test!(polylog_deterministic, |a: &mut RegAlloc| {
    PolyLogRename::new(a, 1 << 10, 4, &RenameConfig::with_seed(2))
});
determinism_test!(efficient_deterministic, |a: &mut RegAlloc| {
    EfficientRename::new(a, 4, &RenameConfig::with_seed(3))
});
determinism_test!(almost_adaptive_deterministic, |a: &mut RegAlloc| {
    AlmostAdaptive::new(a, 128, 8, &RenameConfig::with_seed(4))
});
determinism_test!(adaptive_deterministic, |a: &mut RegAlloc| {
    AdaptiveRename::new(a, 8, &RenameConfig::with_seed(5))
});
