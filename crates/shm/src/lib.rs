//! Shared-memory substrate for the *Asynchronous Exclusive Selection* stack.
//!
//! This crate models the system of Chlebus & Kowalski (PODC 2008): `n`
//! asynchronous, crash-prone processes communicating only through shared
//! multi-reader multi-writer read/write registers. It provides:
//!
//! * [`Word`] — the value held by one register ("one integer of arbitrary
//!   magnitude" in the paper; extended with an `Arc`-boxed record so an
//!   atomic-snapshot component fits in a single register, exactly as the
//!   snapshot literature assumes).
//! * [`Memory`] — the access trait. Every read/write is charged to the
//!   calling process as one **local step**, the paper's complexity measure,
//!   and may fail with [`Crash`] when the environment kills the process.
//! * [`Ctx`] — a per-process handle bundling a memory reference with the
//!   process id; all algorithms are written against `Ctx`.
//! * [`RegAlloc`]/[`RegRange`] — static register-layout allocation, so that
//!   composite algorithms can account exactly for the auxiliary-register
//!   complexity `r` claimed by each theorem.
//! * [`StepMachine`] — the *non-blocking* op interface alongside [`Ctx`]:
//!   an algorithm suspended between shared-memory operations, announcing
//!   its next operation ([`ShmOp`]) before performing it. Blocking callers
//!   use [`drive`]; the single-threaded `exsel_sim::StepEngine` schedules
//!   thousands of machines without spawning a thread per process.
//! * [`ThreadedShm`] — a real-concurrency implementation (one linearizable,
//!   cache-line-padded register per cell) used by benches and examples
//!   running on OS threads.
//! * [`snapshot::Snapshot`] — the wait-free atomic-snapshot object of Afek,
//!   Attiya, Dolev, Gafni, Merritt and Shavit (JACM 1993), required by the
//!   classic (2k−1)-renaming stage and by `Selfish-Deposit`. Both blocking
//!   and step-machine (one shared-memory operation per poll) drivers are
//!   provided; the poll form is what lets `Altruistic-Deposit` interleave
//!   two activities at event granularity as the paper prescribes.
//!
//! # Example
//!
//! ```
//! use exsel_shm::{Ctx, Memory, Pid, RegAlloc, ThreadedShm, Word};
//!
//! let mut alloc = RegAlloc::new();
//! let bank = alloc.reserve(4);
//! let mem = ThreadedShm::new(alloc.total(), 2);
//!
//! let ctx = Ctx::new(&mem, Pid(0));
//! ctx.write(bank.get(0), Word::Int(7)).unwrap();
//! assert_eq!(ctx.read(bank.get(0)).unwrap(), Word::Int(7));
//! assert_eq!(ctx.steps(), 2); // one write + one read = two local steps
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod bank;
mod ctx;
mod error;
mod fingerprint;
pub mod footprint;
mod mem;
mod snap_arena;
pub mod snapshot;
pub mod step;
mod threaded;
mod word;

pub use alloc::{RegAlloc, RegRange};
pub use bank::{ArcBank, RegisterBank, SlabBank};
pub use ctx::Ctx;
pub use error::{Crash, Step};
pub use fingerprint::{Fingerprint, StateHasher, TokenMap};
pub use footprint::{Access, Extent, Footprint, FootprintSpec};
pub use mem::{Memory, OpKind, Pid, RegId};
pub use snap_arena::{SnapArena, SnapArenaStats};
pub use snapshot::Snapshot;
pub use step::{drive, MapOutput, Poll, ShmOp, StepMachine};
pub use threaded::ThreadedShm;
pub use word::{SnapRecord, Word};
