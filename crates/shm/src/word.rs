//! Register contents.

use std::fmt;
use std::sync::Arc;

/// The value stored in one shared register.
///
/// The paper assumes "an auxiliary shared register can store one integer of
/// arbitrary magnitude". [`Word::Int`] and [`Word::Pair`] cover the integer
/// payloads used by the renaming and store&collect algorithms, and
/// [`Word::Snap`] holds an atomic-snapshot record (sequence number, value,
/// embedded view) in a single register as the snapshot construction of Afek
/// et al. requires. `Null` is the distinguished initial value.
///
/// ```
/// use exsel_shm::Word;
/// let w = Word::from(3u64);
/// assert_eq!(w.as_int(), Some(3));
/// assert!(Word::Null.is_null());
/// ```
#[derive(Clone, Debug, Default, Eq)]
pub enum Word {
    /// Initial "empty" register contents.
    #[default]
    Null,
    /// One unsigned integer.
    Int(u64),
    /// Two unsigned integers (e.g. `(owner token, payload)`).
    Pair(u64, u64),
    /// An atomic-snapshot record.
    Snap(Arc<SnapRecord>),
}

impl Word {
    /// Returns `true` for the initial [`Word::Null`] value.
    ///
    /// ```
    /// # use exsel_shm::Word;
    /// assert!(Word::Null.is_null());
    /// assert!(!Word::Int(0).is_null());
    /// ```
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Word::Null)
    }

    /// The integer payload, if this word is an [`Word::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Word::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The pair payload, if this word is a [`Word::Pair`].
    #[must_use]
    pub fn as_pair(&self) -> Option<(u64, u64)> {
        match self {
            Word::Pair(a, b) => Some((*a, *b)),
            _ => None,
        }
    }

    /// The snapshot record, if this word is a [`Word::Snap`].
    #[must_use]
    pub fn as_snap(&self) -> Option<&Arc<SnapRecord>> {
        match self {
            Word::Snap(rec) => Some(rec),
            _ => None,
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the word is not an [`Word::Int`]. Algorithms use this only
    /// on registers whose type discipline they control.
    #[must_use]
    #[track_caller]
    pub fn expect_int(&self) -> u64 {
        self.as_int()
            .unwrap_or_else(|| panic!("register holds {self:?}, expected Int"))
    }
}

/// Structural equality with an [`Arc::ptr_eq`] fast path on
/// [`Word::Snap`]: two registers holding the *same* record (the common
/// case for unchanged-register checks — scanners and engines re-reading
/// a quiescent component see the identical `Arc`) compare in O(1)
/// instead of deep-comparing the record's length-`n` embedded view (and,
/// recursively, any `Snap` nested inside it). Pointer-unequal records
/// still fall back to full structural comparison, so value-equal words
/// always compare equal regardless of sharing.
impl PartialEq for Word {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Word::Null, Word::Null) => true,
            (Word::Int(a), Word::Int(b)) => a == b,
            (Word::Pair(a, b), Word::Pair(c, d)) => a == c && b == d,
            (Word::Snap(a), Word::Snap(b)) => Arc::ptr_eq(a, b) || **a == **b,
            _ => false,
        }
    }
}

impl From<u64> for Word {
    fn from(v: u64) -> Self {
        Word::Int(v)
    }
}

impl From<(u64, u64)> for Word {
    fn from((a, b): (u64, u64)) -> Self {
        Word::Pair(a, b)
    }
}

impl From<Option<u64>> for Word {
    fn from(v: Option<u64>) -> Self {
        match v {
            Some(v) => Word::Int(v),
            None => Word::Null,
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Word::Null => write!(f, "⊥"),
            Word::Int(v) => write!(f, "{v}"),
            Word::Pair(a, b) => write!(f, "({a},{b})"),
            Word::Snap(rec) => write!(f, "snap#{}", rec.seq),
        }
    }
}

/// One component of the atomic-snapshot object: a sequence number, the
/// current value of the component, and the *embedded view* — a snapshot
/// taken by the writer during its update, which concurrent scanners may
/// borrow (Afek et al., JACM 1993).
#[derive(Clone, Debug, Eq)]
pub struct SnapRecord {
    /// Per-writer sequence number, strictly increasing across updates.
    pub seq: u64,
    /// The component value installed by the update.
    pub value: Word,
    /// The view embedded by the writer (one entry per component).
    pub view: Arc<[Word]>,
}

/// Structural equality with an [`Arc::ptr_eq`] fast path on the embedded
/// view: records sharing one view buffer (recycled scan outputs, borrowed
/// views) compare without walking the `n` embedded words. See the
/// matching fast path on [`Word`].
impl PartialEq for SnapRecord {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
            && self.value == other.value
            && (Arc::ptr_eq(&self.view, &other.view) || self.view == other.view)
    }
}

impl SnapRecord {
    /// The record representing a never-written component of an `n`-slot
    /// snapshot object.
    #[must_use]
    pub fn initial(n: usize) -> Self {
        SnapRecord {
            seq: 0,
            value: Word::Null,
            view: vec![Word::Null; n].into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_null() {
        assert_eq!(Word::default(), Word::Null);
        assert!(Word::default().is_null());
    }

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Word::Int(5).as_int(), Some(5));
        assert_eq!(Word::Pair(1, 2).as_pair(), Some((1, 2)));
        assert_eq!(Word::Null.as_int(), None);
        assert_eq!(Word::Int(5).as_pair(), None);
        let rec = Arc::new(SnapRecord::initial(2));
        assert_eq!(Word::Snap(rec.clone()).as_snap(), Some(&rec));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Word::from(9u64), Word::Int(9));
        assert_eq!(Word::from((3u64, 4u64)), Word::Pair(3, 4));
        assert_eq!(Word::from(Some(1u64)), Word::Int(1));
        assert_eq!(Word::from(None::<u64>), Word::Null);
    }

    #[test]
    fn expect_int_ok() {
        assert_eq!(Word::Int(11).expect_int(), 11);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn expect_int_panics_on_null() {
        let _ = Word::Null.expect_int();
    }

    #[test]
    fn display_forms() {
        assert_eq!(Word::Null.to_string(), "⊥");
        assert_eq!(Word::Int(7).to_string(), "7");
        assert_eq!(Word::Pair(1, 2).to_string(), "(1,2)");
        let rec = Arc::new(SnapRecord {
            seq: 3,
            value: Word::Int(0),
            view: vec![].into(),
        });
        assert_eq!(Word::Snap(rec).to_string(), "snap#3");
    }

    #[test]
    fn ptr_unequal_but_value_equal_records_compare_equal() {
        // Two structurally identical records behind different Arcs (and
        // different view buffers) must compare equal — the ptr_eq fast
        // path is an optimization, never a semantic change.
        let make = || SnapRecord {
            seq: 4,
            value: Word::Pair(1, 2),
            view: vec![Word::Int(9), Word::Null].into(),
        };
        let (a, b) = (Arc::new(make()), Arc::new(make()));
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a.view, &b.view));
        assert_eq!(*a, *b);
        assert_eq!(Word::Snap(a), Word::Snap(b));
    }

    #[test]
    fn shared_records_compare_without_deep_equality() {
        // A register word and its re-read share one Arc: the comparison
        // must succeed through the pointer fast path even when the
        // embedded views nest further Snap words (which a deep walk
        // would recurse into).
        let inner = Arc::new(SnapRecord {
            seq: 1,
            value: Word::Int(3),
            view: vec![Word::Null; 3].into(),
        });
        let rec = Arc::new(SnapRecord {
            seq: 2,
            value: Word::Snap(inner),
            view: vec![Word::Null; 3].into(),
        });
        assert_eq!(Word::Snap(Arc::clone(&rec)), Word::Snap(rec));
    }

    #[test]
    fn unequal_records_still_compare_unequal() {
        let base = SnapRecord {
            seq: 7,
            value: Word::Int(1),
            view: vec![Word::Int(5)].into(),
        };
        let mut other = base.clone();
        other.view = vec![Word::Int(6)].into();
        assert_ne!(base, other);
        let mut other = base.clone();
        other.seq = 8;
        assert_ne!(base, other);
    }

    #[test]
    fn initial_record_shape() {
        let rec = SnapRecord::initial(3);
        assert_eq!(rec.seq, 0);
        assert!(rec.value.is_null());
        assert_eq!(rec.view.len(), 3);
        assert!(rec.view.iter().all(Word::is_null));
    }
}
