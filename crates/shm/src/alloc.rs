//! Static register-layout allocation.
//!
//! Every algorithm in the stack reserves its auxiliary registers up front
//! through a [`RegAlloc`], so that (a) composite algorithms lay out disjoint
//! banks exactly as the paper requires ("the sets of registers used ... are
//! to be disjoint"), and (b) the total register complexity `r` of any
//! configuration is simply [`RegAlloc::total`], measurable by experiments.

use crate::RegId;

/// A bump allocator for register indices.
///
/// ```
/// use exsel_shm::RegAlloc;
/// let mut alloc = RegAlloc::new();
/// let a = alloc.reserve(3);
/// let b = alloc.reserve(2);
/// assert_eq!(a.get(2).0, 2);
/// assert_eq!(b.get(0).0, 3); // banks are disjoint
/// assert_eq!(alloc.total(), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RegAlloc {
    next: usize,
}

impl RegAlloc {
    /// Creates an empty allocator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `len` fresh registers and returns their range.
    pub fn reserve(&mut self, len: usize) -> RegRange {
        let start = self.next;
        self.next += len;
        RegRange { start, len }
    }

    /// Total number of registers reserved so far. A memory serving this
    /// layout must have at least this many registers.
    #[must_use]
    pub fn total(&self) -> usize {
        self.next
    }
}

/// A contiguous range of registers owned by one algorithm component.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RegRange {
    start: usize,
    len: usize,
}

impl RegRange {
    /// An empty range (no registers).
    #[must_use]
    pub fn empty() -> Self {
        RegRange { start: 0, len: 0 }
    }

    /// The `i`-th register of the range.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    #[track_caller]
    pub fn get(&self, i: usize) -> RegId {
        assert!(
            i < self.len,
            "register index {i} out of bank of length {}",
            self.len
        );
        RegId(self.start + i)
    }

    /// Number of registers in the range.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First register index.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Iterates over the registers in the range.
    pub fn iter(&self) -> impl Iterator<Item = RegId> + '_ {
        (self.start..self.start + self.len).map(RegId)
    }

    /// A sub-range of `len` registers starting at offset `offset`.
    ///
    /// Used by footprint declarations to name a component's extent (one
    /// slot, one row of a matrix bank) without exposing raw indices.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len > self.len()`.
    #[must_use]
    #[track_caller]
    pub fn slice(&self, offset: usize, len: usize) -> RegRange {
        assert!(
            offset + len <= self.len,
            "slice {offset}+{len} beyond bank of length {}",
            self.len
        );
        RegRange {
            start: self.start + offset,
            len,
        }
    }

    /// Splits the range into a prefix of `at` registers and the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    #[must_use]
    pub fn split_at(&self, at: usize) -> (RegRange, RegRange) {
        assert!(
            at <= self.len,
            "split {at} beyond bank of length {}",
            self.len
        );
        (
            RegRange {
                start: self.start,
                len: at,
            },
            RegRange {
                start: self.start + at,
                len: self.len - at,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_banks() {
        let mut a = RegAlloc::new();
        let r1 = a.reserve(4);
        let r2 = a.reserve(4);
        let ids1: Vec<_> = r1.iter().collect();
        let ids2: Vec<_> = r2.iter().collect();
        assert!(ids1.iter().all(|i| !ids2.contains(i)));
        assert_eq!(a.total(), 8);
    }

    #[test]
    fn get_and_iter_agree() {
        let mut a = RegAlloc::new();
        a.reserve(2);
        let r = a.reserve(3);
        let via_get: Vec<_> = (0..r.len()).map(|i| r.get(i)).collect();
        let via_iter: Vec<_> = r.iter().collect();
        assert_eq!(via_get, via_iter);
        assert_eq!(r.start(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bank")]
    fn get_out_of_range_panics() {
        let mut a = RegAlloc::new();
        let r = a.reserve(1);
        let _ = r.get(1);
    }

    #[test]
    fn split_at_partitions() {
        let mut a = RegAlloc::new();
        let r = a.reserve(5);
        let (x, y) = r.split_at(2);
        assert_eq!(x.len(), 2);
        assert_eq!(y.len(), 3);
        assert_eq!(x.get(0), r.get(0));
        assert_eq!(y.get(0), r.get(2));
    }

    #[test]
    fn slice_names_a_sub_extent() {
        let mut a = RegAlloc::new();
        a.reserve(3);
        let r = a.reserve(6);
        let row = r.slice(2, 2);
        assert_eq!(row.len(), 2);
        assert_eq!(row.get(0), r.get(2));
        assert_eq!(row.get(1), r.get(3));
        assert!(r.slice(6, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond bank")]
    fn slice_out_of_range_panics() {
        let mut a = RegAlloc::new();
        let r = a.reserve(4);
        let _ = r.slice(3, 2);
    }

    #[test]
    fn empty_range() {
        let r = RegRange::empty();
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn zero_len_reserve() {
        let mut a = RegAlloc::new();
        let r = a.reserve(0);
        assert!(r.is_empty());
        assert_eq!(a.total(), 0);
    }
}
