//! State fingerprinting for symmetry-reduced exploration.
//!
//! The reduced explorer (`exsel_sim::reduce`) prunes a branch when the
//! *global state* it leads to — machine control states plus register-bank
//! contents — has already been expanded. Two states that differ only by a
//! permutation of process ids are equivalent for pid-symmetric algorithms
//! and checkers, so states are compared by a **canonical fingerprint**:
//! the minimum [`StateHasher`] digest over all pid permutations, with
//! pid-derived payloads (the tokens processes write into registers)
//! relabeled through a [`TokenMap`] so the permuted state really is the
//! state the permuted execution would have produced.
//!
//! [`Fingerprint`] is the hashing hook: banks and machines feed their
//! state through it. Implementations must fold in **everything** that can
//! influence future behavior — an under-distinguishing fingerprint makes
//! the visited-set prune unsound (branches wrongly skipped), while an
//! over-distinguishing one merely prunes less. When in doubt, hash more.
//!
//! The digest is 128-bit FNV-1a: deterministic across runs and platforms
//! (no `RandomState`), and wide enough that accidental collisions over
//! the few million states of an exhaustive walk are negligible.

use crate::bank::{ArcBank, RegisterBank, SlabBank};
use crate::mem::RegId;
use crate::word::{SnapRecord, Word};

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental 128-bit FNV-1a digest of one global state.
///
/// ```
/// use exsel_shm::StateHasher;
/// let mut a = StateHasher::new();
/// a.write_u64(7);
/// let mut b = StateHasher::new();
/// b.write_u64(7);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Clone, Debug)]
pub struct StateHasher {
    state: u128,
}

impl StateHasher {
    /// A fresh digest at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        StateHasher { state: FNV_OFFSET }
    }

    /// Folds one byte into the digest.
    pub fn write_u8(&mut self, byte: u8) {
        self.state = (self.state ^ u128::from(byte)).wrapping_mul(FNV_PRIME);
    }

    /// Folds a `u64` into the digest (little-endian bytes).
    pub fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    /// Folds a `usize` into the digest.
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// The digest of everything written so far.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

impl Default for StateHasher {
    fn default() -> Self {
        StateHasher::new()
    }
}

/// A pid relabeling applied to token payloads while fingerprinting.
///
/// `tokens[i]` is the token value process `Pid(i)` carries (the paper's
/// algorithms hand process `i` the original name `i + 1`); `perm[i]` is
/// the position pid `i` takes under the candidate permutation. Relabeling
/// maps `tokens[i]` to `tokens[perm[i]]` and passes every other value
/// through unchanged, so a permuted state hashes exactly as the permuted
/// execution would have written it.
///
/// ```
/// use exsel_shm::TokenMap;
/// let map = TokenMap::new(&[1, 2, 3], &[2, 0, 1]); // pid 0 -> position 2
/// assert_eq!(map.relabel(1), 3);
/// assert_eq!(map.relabel(2), 1);
/// assert_eq!(map.relabel(99), 99); // not a token: unchanged
/// let id = TokenMap::identity();
/// assert_eq!(id.relabel(1), 1);
/// ```
#[derive(Clone, Debug)]
pub struct TokenMap {
    tokens: Vec<u64>,
    perm: Vec<usize>,
}

impl TokenMap {
    /// A relabeling of `tokens` under `perm` (`perm[i]` = new position of
    /// pid `i`). Token values must be pairwise distinct — otherwise the
    /// relabeling is ambiguous.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` and `perm` differ in length, `perm` is not a
    /// permutation of `0..tokens.len()`, or tokens repeat.
    #[must_use]
    pub fn new(tokens: &[u64], perm: &[usize]) -> Self {
        assert_eq!(tokens.len(), perm.len(), "token/permutation length");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "perm is not a permutation");
            seen[p] = true;
        }
        for (i, &t) in tokens.iter().enumerate() {
            assert!(
                !tokens[..i].contains(&t),
                "token values must be distinct for relabeling"
            );
        }
        TokenMap {
            tokens: tokens.to_vec(),
            perm: perm.to_vec(),
        }
    }

    /// The identity relabeling: every value passes through unchanged.
    /// This is the map to use when hashing without symmetry reduction.
    #[must_use]
    pub fn identity() -> Self {
        TokenMap {
            tokens: Vec::new(),
            perm: Vec::new(),
        }
    }

    /// Maps `value` through the relabeling: token of pid `i` becomes the
    /// token of the pid at position `perm[i]`; non-token values are
    /// unchanged.
    #[must_use]
    pub fn relabel(&self, value: u64) -> u64 {
        match self.tokens.iter().position(|&t| t == value) {
            Some(i) => self.tokens[self.perm[i]],
            None => value,
        }
    }
}

/// State hashing under a pid relabeling.
///
/// Implementations fold their complete behavioral state into `hasher`,
/// mapping every pid-derived integer payload through [`TokenMap::relabel`]
/// so that pid-permuted states collide. The contract is the visited-set
/// soundness contract of the reduced explorer: omitting state that
/// influences future transitions makes pruning unsound.
pub trait Fingerprint {
    /// Folds this value's state into `hasher` under `map`.
    fn fingerprint(&self, hasher: &mut StateHasher, map: &TokenMap);
}

/// Integers are treated as (potential) token payloads and relabeled.
/// Values that are not pid tokens pass through [`TokenMap::relabel`]
/// unchanged; integers that must never be relabeled (sequence numbers,
/// counters) should be written via [`StateHasher::write_u64`] directly.
impl Fingerprint for u64 {
    fn fingerprint(&self, hasher: &mut StateHasher, map: &TokenMap) {
        hasher.write_u64(map.relabel(*self));
    }
}

impl Fingerprint for bool {
    fn fingerprint(&self, hasher: &mut StateHasher, _map: &TokenMap) {
        hasher.write_u8(u8::from(*self));
    }
}

impl<T: Fingerprint> Fingerprint for Option<T> {
    fn fingerprint(&self, hasher: &mut StateHasher, map: &TokenMap) {
        match self {
            None => hasher.write_u8(0),
            Some(v) => {
                hasher.write_u8(1);
                v.fingerprint(hasher, map);
            }
        }
    }
}

/// Words hash a variant tag plus relabeled integer payloads. Snapshot
/// records hash by value (sequence number raw, component value and every
/// embedded-view word relabeled), so two banks holding structurally equal
/// records fingerprint identically regardless of `Arc` sharing.
impl Fingerprint for Word {
    fn fingerprint(&self, hasher: &mut StateHasher, map: &TokenMap) {
        match self {
            Word::Null => hasher.write_u8(0),
            Word::Int(v) => {
                hasher.write_u8(1);
                hasher.write_u64(map.relabel(*v));
            }
            Word::Pair(a, b) => {
                hasher.write_u8(2);
                hasher.write_u64(map.relabel(*a));
                hasher.write_u64(map.relabel(*b));
            }
            Word::Snap(rec) => {
                hasher.write_u8(3);
                rec.fingerprint(hasher, map);
            }
        }
    }
}

impl Fingerprint for SnapRecord {
    fn fingerprint(&self, hasher: &mut StateHasher, map: &TokenMap) {
        hasher.write_u64(self.seq);
        self.value.fingerprint(hasher, map);
        hasher.write_usize(self.view.len());
        for w in self.view.iter() {
            w.fingerprint(hasher, map);
        }
    }
}

/// Banks hash their length plus every register word in index order.
impl Fingerprint for ArcBank {
    fn fingerprint(&self, hasher: &mut StateHasher, map: &TokenMap) {
        hasher.write_usize(self.len());
        for w in self.words() {
            w.fingerprint(hasher, map);
        }
    }
}

impl Fingerprint for SlabBank {
    fn fingerprint(&self, hasher: &mut StateHasher, map: &TokenMap) {
        hasher.write_usize(self.len());
        for i in 0..self.len() {
            self.load(RegId(i)).fingerprint(hasher, map);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn digest(f: impl Fn(&mut StateHasher, &TokenMap), map: &TokenMap) -> u128 {
        let mut h = StateHasher::new();
        f(&mut h, map);
        h.finish()
    }

    #[test]
    fn hasher_is_deterministic_and_order_sensitive() {
        let id = TokenMap::identity();
        let a = digest(|h, _| h.write_u64(1), &id);
        let b = digest(|h, _| h.write_u64(1), &id);
        assert_eq!(a, b);
        let ab = digest(
            |h, _| {
                h.write_u64(1);
                h.write_u64(2);
            },
            &id,
        );
        let ba = digest(
            |h, _| {
                h.write_u64(2);
                h.write_u64(1);
            },
            &id,
        );
        assert_ne!(ab, ba);
    }

    #[test]
    fn relabel_maps_tokens_through_the_permutation() {
        // pid 0 takes position 1, pid 1 position 0, pid 2 stays.
        let map = TokenMap::new(&[10, 20, 30], &[1, 0, 2]);
        assert_eq!(map.relabel(10), 20);
        assert_eq!(map.relabel(20), 10);
        assert_eq!(map.relabel(30), 30);
        assert_eq!(map.relabel(7), 7);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn token_map_rejects_non_permutations() {
        let _ = TokenMap::new(&[1, 2], &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn token_map_rejects_duplicate_tokens() {
        let _ = TokenMap::new(&[5, 5], &[0, 1]);
    }

    #[test]
    fn word_variants_hash_distinctly() {
        let id = TokenMap::identity();
        let words = [
            Word::Null,
            Word::Int(0),
            Word::Int(1),
            Word::Pair(0, 0),
            Word::Pair(0, 1),
        ];
        let digests: Vec<u128> = words
            .iter()
            .map(|w| digest(|h, m| w.fingerprint(h, m), &id))
            .collect();
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j], "{:?} vs {:?}", words[i], words[j]);
            }
        }
    }

    #[test]
    fn relabeled_bank_matches_the_permuted_bank() {
        // Writing token(0) into r0 and hashing under the swap 0<->1 must
        // equal writing token(1) into r0 and hashing under identity with
        // the same token universe: the relabeled state IS the state the
        // permuted execution would produce.
        let tokens = [1u64, 2u64];
        let swap = TokenMap::new(&tokens, &[1, 0]);
        let ident = TokenMap::new(&tokens, &[0, 1]);
        let mut a = ArcBank::new();
        a.reset(2);
        a.write(RegId(0), Word::Int(1));
        let mut b = ArcBank::new();
        b.reset(2);
        b.write(RegId(0), Word::Int(2));
        let da = digest(|h, m| a.fingerprint(h, m), &swap);
        let db = digest(|h, m| b.fingerprint(h, m), &ident);
        assert_eq!(da, db);
    }

    #[test]
    fn slab_and_arc_banks_fingerprint_identically() {
        let id = TokenMap::identity();
        let rec = Arc::new(SnapRecord {
            seq: 3,
            value: Word::Int(7),
            view: vec![Word::Null, Word::Int(2)].into(),
        });
        let words = [Word::Int(5), Word::Null, Word::Snap(rec), Word::Pair(1, 9)];
        let mut arc = ArcBank::new();
        let mut slab = SlabBank::new();
        arc.reset(words.len());
        slab.reset(words.len());
        for (i, w) in words.iter().enumerate() {
            arc.write(RegId(i), w.clone());
            slab.write(RegId(i), w.clone());
        }
        let da = digest(|h, m| arc.fingerprint(h, m), &id);
        let ds = digest(|h, m| slab.fingerprint(h, m), &id);
        assert_eq!(da, ds, "backends must agree on the state digest");
    }

    #[test]
    fn snap_records_hash_by_value_not_by_arc_identity() {
        let id = TokenMap::identity();
        let make = || {
            Word::Snap(Arc::new(SnapRecord {
                seq: 2,
                value: Word::Int(4),
                view: vec![Word::Int(1)].into(),
            }))
        };
        let (a, b) = (make(), make());
        let da = digest(|h, m| a.fingerprint(h, m), &id);
        let db = digest(|h, m| b.fingerprint(h, m), &id);
        assert_eq!(da, db);
    }
}
