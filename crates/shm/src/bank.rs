//! Register-bank storage backends for the step-machine engine.
//!
//! The engine's register bank was historically a `Vec<Word>` — one enum
//! word per register, with [`Word::Snap`] variants holding an `Arc` to
//! the snapshot record. That representation is kept as [`ArcBank`] (the
//! differential oracle), and [`SlabBank`] is the mega-scale backend:
//! registers are [`SlabEntry`]s — `Copy` payloads with the common small
//! variants (`Null`/`Int`/`Pair`) inlined and snapshot records referenced
//! by an `(index, generation)` handle into contiguous slab storage. A
//! steady-state grant on an inline word is a plain 16-byte store with no
//! drop glue and no refcount traffic; only snapshot-bearing registers
//! touch the slab.
//!
//! Handle lifecycle invariants (asserted in debug builds):
//!
//! * a handle is minted by [`SlabBank::write`] installing a `Snap` word
//!   and stays valid until that register is overwritten or the bank is
//!   reset;
//! * freeing a slot bumps its generation, so a stale handle can never
//!   alias a recycled slot;
//! * the slot's `Arc<SnapRecord>` is dropped at free time — the same
//!   moment the displaced `Word` of an [`ArcBank`] would drop — so the
//!   snapshot arena's uniqueness-based record recycling behaves
//!   identically on both backends (this is what makes slab-vs-Arc trials
//!   bit-identical; see `tests/pooled_determinism.rs`).
//!
//! Both backends implement [`RegisterBank`], the storage interface of
//! `exsel_sim::StepEngine`.

use crate::mem::RegId;
use crate::word::Word;

/// Borrowed result of reading a never-written / nulled register.
static NULL_WORD: Word = Word::Null;

/// Storage interface of the step-machine engine's register bank.
///
/// `read` takes `&mut self` so implementations may decode into an
/// internal scratch cell; the returned borrow is only required to live
/// until the next bank operation (the engine hands it straight to
/// `StepMachine::advance`).
pub trait RegisterBank {
    /// Re-initializes the bank to `num_registers` null registers,
    /// keeping allocated capacity (called by the engine's per-trial
    /// reset).
    fn reset(&mut self, num_registers: usize);

    /// Number of registers.
    fn len(&self) -> usize;

    /// Whether the bank has no registers.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current word of `reg`, borrowed for immediate consumption.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range.
    fn read(&mut self, reg: RegId) -> &Word;

    /// Installs `word` in `reg`. The displaced value is dropped after
    /// the new one is in place (assignment semantics).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range.
    fn write(&mut self, reg: RegId, word: Word);

    /// Materializes the current word of `reg` — the inspection path for
    /// post-trial audits and differential comparisons, available without
    /// `&mut` access.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range.
    fn load(&self, reg: RegId) -> Word;
}

/// The historical register bank: one [`Word`] per register. Reads
/// borrow the word in place; writes are enum assignments (drop glue runs
/// on the displaced word). Kept as the differential oracle for
/// [`SlabBank`].
#[derive(Debug, Default)]
pub struct ArcBank {
    words: Vec<Word>,
}

impl ArcBank {
    /// An empty bank; size it with [`RegisterBank::reset`].
    #[must_use]
    pub fn new() -> Self {
        ArcBank::default()
    }

    /// The register words as a slice, indexed by [`RegId`] — the
    /// post-trial inspection path occupancy audits use.
    #[must_use]
    pub fn words(&self) -> &[Word] {
        &self.words
    }
}

impl RegisterBank for ArcBank {
    fn reset(&mut self, num_registers: usize) {
        self.words.clear();
        self.words.resize(num_registers, Word::Null);
    }

    fn len(&self) -> usize {
        self.words.len()
    }

    fn read(&mut self, reg: RegId) -> &Word {
        &self.words[reg.0]
    }

    fn write(&mut self, reg: RegId, word: Word) {
        self.words[reg.0] = word;
    }

    fn load(&self, reg: RegId) -> Word {
        self.words[reg.0].clone()
    }
}

/// One register of a [`SlabBank`]: the small [`Word`] variants inlined
/// (16 bytes, `Copy`, no drop glue), snapshot records as generation-tagged
/// handles into the bank's slot storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlabEntry {
    /// The initial "empty" register contents.
    Null,
    /// Inlined [`Word::Int`].
    Int(u64),
    /// Inlined [`Word::Pair`].
    Pair(u64, u64),
    /// Handle to a [`Word::Snap`] parked in slot storage. `gen` must
    /// match the slot's current generation — a mismatch means the handle
    /// outlived its slot (a lifecycle bug, caught in debug builds).
    Snap { slot: u32, gen: u32 },
}

/// One slot of the slab's snapshot-record storage.
#[derive(Debug)]
struct SnapSlot {
    /// Generation tag; bumped every time the slot is freed so stale
    /// handles can never alias a recycled slot.
    gen: u32,
    /// The parked word ([`Word::Snap`] while the slot is live,
    /// [`Word::Null`] while it sits on the free list).
    word: Word,
}

/// The mega-scale register bank: contiguous `Copy` entries with inline
/// small payloads, snapshot records behind `(index, generation)` handles
/// into slab slots. See the module docs for the lifecycle invariants.
#[derive(Debug, Default)]
pub struct SlabBank {
    entries: Vec<SlabEntry>,
    slots: Vec<SnapSlot>,
    /// Indices of free slots, reused LIFO.
    free: Vec<u32>,
    /// Decode cell for borrowing inline entries as `&Word`.
    scratch: Word,
    /// Currently live (snapshot-holding) slots.
    live: usize,
    /// High-water mark of `live` since construction.
    peak_live: usize,
    /// Registers currently holding a non-null entry (inline or slab).
    occupied: usize,
    /// High-water mark of `occupied` since construction.
    peak_occupied: usize,
}

impl SlabBank {
    /// An empty bank; size it with [`RegisterBank::reset`].
    #[must_use]
    pub fn new() -> Self {
        SlabBank::default()
    }

    /// Slots currently holding a snapshot record.
    #[must_use]
    pub fn live_slots(&self) -> usize {
        self.live
    }

    /// High-water mark of [`SlabBank::live_slots`] since construction
    /// (reset does not clear it — it tracks the slab's real footprint
    /// across a sweep).
    #[must_use]
    pub fn peak_slots(&self) -> usize {
        self.peak_live
    }

    /// Slots ever allocated (live + free); the slab's capacity
    /// footprint.
    #[must_use]
    pub fn allocated_slots(&self) -> usize {
        self.slots.len()
    }

    /// Registers currently holding a non-null word — inline `Int`/`Pair`
    /// entries included, not just slab-parked snapshot records. This is
    /// the occupancy the mega-scale telemetry reports: algorithms whose
    /// registers only ever hold integers (the majority sweep) have
    /// `live_slots() == 0` forever, but their real footprint is here.
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.occupied
    }

    /// High-water mark of [`SlabBank::live_entries`] since construction
    /// (reset does not clear it — like [`SlabBank::peak_slots`], it
    /// tracks the real footprint across a sweep).
    #[must_use]
    pub fn peak_entries(&self) -> usize {
        self.peak_occupied
    }

    /// Pre-seeds the slab's snapshot-slot storage so at least
    /// `snap_slots` slots exist (live or free). Slots otherwise grow
    /// lazily on the first `Snap` write each; a harness that promises a
    /// zero-allocation steady state (the sharded service runs build one
    /// bank per shard) reserves its per-bank high-water up front so the
    /// slot vector never grows mid-run. Reserved slots survive
    /// [`RegisterBank::reset`], which rebuilds the free list over every
    /// allocated slot.
    pub fn reserve_slots(&mut self, snap_slots: usize) {
        while self.slots.len() < snap_slots {
            let slot = u32::try_from(self.slots.len()).expect("slab slot index fits u32");
            self.slots.push(SnapSlot {
                gen: 0,
                word: Word::Null,
            });
            self.free.push(slot);
        }
    }

    /// Parks `word` in a slot and returns its handle.
    fn alloc_slot(&mut self, word: Word) -> (u32, u32) {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.word.is_null(), "free slot still holds a record");
            s.word = word;
            (slot, s.gen)
        } else {
            let slot = u32::try_from(self.slots.len()).expect("slab slot index fits u32");
            self.slots.push(SnapSlot { gen: 0, word });
            (slot, 0)
        }
    }

    /// Releases a slot: drops its record **now** (matching the drop a
    /// `Vec<Word>` assignment would perform), bumps the generation and
    /// returns the slot to the free list.
    fn free_slot(&mut self, slot: u32, gen: u32) {
        let s = &mut self.slots[slot as usize];
        debug_assert_eq!(s.gen, gen, "stale slab handle freed");
        s.word = Word::Null;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
    }
}

impl RegisterBank for SlabBank {
    fn reset(&mut self, num_registers: usize) {
        self.entries.clear();
        self.entries.resize(num_registers, SlabEntry::Null);
        // Free every slot (dropping parked records) and rebuild the free
        // list in slot order — deterministic, and capacity-preserving so
        // steady-state sweeps allocate nothing.
        self.free.clear();
        for (i, s) in self.slots.iter_mut().enumerate() {
            if !s.word.is_null() {
                s.word = Word::Null;
                s.gen = s.gen.wrapping_add(1);
            }
            self.free.push(i as u32);
        }
        self.live = 0;
        self.occupied = 0;
        self.scratch = Word::Null;
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn read(&mut self, reg: RegId) -> &Word {
        match self.entries[reg.0] {
            SlabEntry::Null => &NULL_WORD,
            SlabEntry::Int(v) => {
                self.scratch = Word::Int(v);
                &self.scratch
            }
            SlabEntry::Pair(a, b) => {
                self.scratch = Word::Pair(a, b);
                &self.scratch
            }
            SlabEntry::Snap { slot, gen } => {
                let s = &self.slots[slot as usize];
                debug_assert_eq!(s.gen, gen, "stale slab handle read");
                &s.word
            }
        }
    }

    fn write(&mut self, reg: RegId, word: Word) {
        let old = self.entries[reg.0];
        let new = match word {
            Word::Null => SlabEntry::Null,
            Word::Int(v) => SlabEntry::Int(v),
            Word::Pair(a, b) => SlabEntry::Pair(a, b),
            snap @ Word::Snap(_) => {
                let (slot, gen) = self.alloc_slot(snap);
                SlabEntry::Snap { slot, gen }
            }
        };
        self.entries[reg.0] = new;
        match (old == SlabEntry::Null, new == SlabEntry::Null) {
            (true, false) => {
                self.occupied += 1;
                self.peak_occupied = self.peak_occupied.max(self.occupied);
            }
            (false, true) => self.occupied -= 1,
            _ => {}
        }
        // Drop the displaced record only after the new word is in place —
        // assignment semantics, keeping arena recycling in lock-step with
        // the Arc bank.
        if let SlabEntry::Snap { slot, gen } = old {
            self.free_slot(slot, gen);
        }
    }

    fn load(&self, reg: RegId) -> Word {
        match self.entries[reg.0] {
            SlabEntry::Null => Word::Null,
            SlabEntry::Int(v) => Word::Int(v),
            SlabEntry::Pair(a, b) => Word::Pair(a, b),
            SlabEntry::Snap { slot, gen } => {
                let s = &self.slots[slot as usize];
                debug_assert_eq!(s.gen, gen, "stale slab handle loaded");
                s.word.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::SnapRecord;
    use std::sync::Arc;

    fn snap_word(seq: u64) -> Word {
        Word::Snap(Arc::new(SnapRecord {
            seq,
            value: Word::Int(seq),
            view: vec![Word::Null; 2].into(),
        }))
    }

    #[test]
    fn inline_words_roundtrip_on_both_banks() {
        let words = [Word::Null, Word::Int(7), Word::Pair(3, 4)];
        let mut arc = ArcBank::new();
        let mut slab = SlabBank::new();
        arc.reset(words.len());
        slab.reset(words.len());
        for (i, w) in words.iter().enumerate() {
            arc.write(RegId(i), w.clone());
            slab.write(RegId(i), w.clone());
        }
        for (i, w) in words.iter().enumerate() {
            assert_eq!(arc.read(RegId(i)), w);
            assert_eq!(slab.read(RegId(i)), w);
            assert_eq!(arc.load(RegId(i)), *w);
            assert_eq!(slab.load(RegId(i)), *w);
        }
        assert_eq!(slab.live_slots(), 0, "inline words must not touch slots");
    }

    #[test]
    fn snap_words_share_the_parked_arc() {
        let mut slab = SlabBank::new();
        slab.reset(1);
        let w = snap_word(5);
        let rec = w.as_snap().unwrap().clone();
        slab.write(RegId(0), w);
        assert_eq!(slab.live_slots(), 1);
        // The read borrow is the parked Arc itself, not a clone.
        let read = slab.read(RegId(0)).as_snap().unwrap();
        assert!(Arc::ptr_eq(read, &rec));
        assert_eq!(Arc::strong_count(&rec), 2); // ours + the slab's
    }

    #[test]
    fn overwriting_a_snap_frees_its_slot_and_bumps_the_generation() {
        let mut slab = SlabBank::new();
        slab.reset(2);
        let first = snap_word(1);
        let rec = first.as_snap().unwrap().clone();
        slab.write(RegId(0), first);
        assert_eq!(Arc::strong_count(&rec), 2);

        slab.write(RegId(0), Word::Int(9));
        assert_eq!(Arc::strong_count(&rec), 1, "displaced record dropped");
        assert_eq!(slab.live_slots(), 0);

        // The freed slot is recycled under a new generation.
        slab.write(RegId(1), snap_word(2));
        assert_eq!(slab.allocated_slots(), 1, "slot recycled, not grown");
        assert_eq!(slab.live_slots(), 1);
        assert_eq!(slab.peak_slots(), 1);
    }

    #[test]
    fn reset_frees_slots_but_keeps_capacity() {
        let mut slab = SlabBank::new();
        slab.reset(3);
        for i in 0..3 {
            slab.write(RegId(i), snap_word(i as u64));
        }
        assert_eq!(slab.live_slots(), 3);
        slab.reset(3);
        assert_eq!(slab.live_slots(), 0);
        assert_eq!(slab.allocated_slots(), 3);
        assert_eq!(slab.peak_slots(), 3, "peak survives reset");
        assert!(slab.load(RegId(0)).is_null());
        // Steady state: the same trial shape reuses the same slots.
        for i in 0..3 {
            slab.write(RegId(i), snap_word(10 + i as u64));
        }
        assert_eq!(slab.allocated_slots(), 3);
    }

    #[test]
    fn entry_occupancy_counts_inline_words() {
        let mut slab = SlabBank::new();
        slab.reset(4);
        assert_eq!(slab.live_entries(), 0);
        slab.write(RegId(0), Word::Int(1));
        slab.write(RegId(1), Word::Pair(2, 3));
        slab.write(RegId(2), snap_word(9));
        assert_eq!(slab.live_entries(), 3);
        assert_eq!(slab.peak_entries(), 3);
        assert_eq!(slab.live_slots(), 1, "only the snap touches slots");
        // Overwrite in place: occupancy unchanged.
        slab.write(RegId(0), Word::Int(7));
        assert_eq!(slab.live_entries(), 3);
        // Nulling a register releases its occupancy.
        slab.write(RegId(1), Word::Null);
        assert_eq!(slab.live_entries(), 2);
        assert_eq!(slab.peak_entries(), 3, "peak is a high-water mark");
        // Reset clears live occupancy, peak survives (sweep footprint).
        slab.reset(4);
        assert_eq!(slab.live_entries(), 0);
        assert_eq!(slab.peak_entries(), 3);
    }

    #[test]
    fn reserved_slots_preempt_lazy_growth_and_survive_reset() {
        let mut slab = SlabBank::new();
        slab.reset(4);
        slab.reserve_slots(3);
        assert_eq!(slab.allocated_slots(), 3);
        assert_eq!(slab.live_slots(), 0);
        // Writes park records in the reserved slots without growing.
        for i in 0..3 {
            slab.write(RegId(i), snap_word(i as u64));
        }
        assert_eq!(slab.allocated_slots(), 3);
        assert_eq!(slab.live_slots(), 3);
        // Reset keeps the reserved capacity; a smaller reserve is a
        // no-op on an already-large slab.
        slab.reset(4);
        slab.reserve_slots(2);
        assert_eq!(slab.allocated_slots(), 3);
        for i in 0..3 {
            slab.write(RegId(i), snap_word(10 + i as u64));
        }
        assert_eq!(slab.allocated_slots(), 3, "steady state must not grow");
    }

    #[test]
    fn load_matches_read_for_snap_entries() {
        let mut slab = SlabBank::new();
        slab.reset(1);
        let w = snap_word(8);
        slab.write(RegId(0), w.clone());
        assert_eq!(slab.load(RegId(0)), w);
        assert_eq!(*slab.read(RegId(0)), w);
    }
}
