//! Non-blocking execution of shared-memory algorithms: **step machines**.
//!
//! A [`StepMachine`] is an algorithm suspended between shared-memory
//! operations. At every moment it exposes the single operation it wants to
//! perform next ([`StepMachine::op`], a pure inspection) and a transition
//! consuming that operation's result ([`StepMachine::advance`]). This
//! factoring is what lets a scheduler *see* every process's pending
//! operation — `(read/write, register)`, exactly the adversary's knowledge
//! in the paper's model — **before** deciding whom to advance, without
//! parking one OS thread per simulated process. The single-threaded
//! `exsel_sim::StepEngine` is built on it; so is the poll-based snapshot
//! machinery ([`crate::snapshot::ScanOp`], [`crate::snapshot::UpdateOp`])
//! and every renaming driver in `exsel-core`.
//!
//! Blocking callers are served by [`StepMachine::poll`] (perform exactly
//! one operation through a [`Ctx`]) and [`drive`] (run to completion);
//! the blocking `Rename` APIs are thin [`drive`] adapters over the same
//! machines, so both execution backends observe identical operation
//! sequences.
//!
//! # Contract
//!
//! * `op()` is pure and may be called any number of times between
//!   transitions; it describes the next operation exactly. `peek()` is
//!   the cheap form — just `(kind, register)` — that schedulers use to
//!   collect pending operations without materializing operand words.
//! * `advance(input)` consumes the result of the operation last returned
//!   by `op()` — a borrow of the register's value for a read,
//!   [`Word::Null`] for a write — and either completes with
//!   [`Poll::Ready`] or moves to the next operation. The borrow is what
//!   lets snapshot scanners skip cloning an `Arc`-carrying
//!   [`Word::Snap`] when its sequence number shows the register
//!   unchanged since their last collect.
//! * A machine performs **at least one** operation before completing, and
//!   neither `op` nor `advance` may be called after `Ready`.
//! * `reset(pid)` (optional — default panics) re-initializes the machine
//!   to its just-constructed state so pooled machines can be re-driven
//!   across trials without reallocation; see [`StepMachine::reset`].
//!
//! ```
//! use exsel_shm::{drive, Ctx, Pid, Poll, RegAlloc, ShmOp, StepMachine, ThreadedShm, Word};
//!
//! /// Reads a register, then writes the value plus one back.
//! struct Increment {
//!     reg: exsel_shm::RegId,
//!     seen: Option<u64>,
//! }
//!
//! impl StepMachine for Increment {
//!     type Output = u64;
//!     fn op(&self) -> ShmOp {
//!         match self.seen {
//!             None => ShmOp::Read(self.reg),
//!             Some(v) => ShmOp::Write(self.reg, Word::Int(v + 1)),
//!         }
//!     }
//!     fn advance(&mut self, input: &Word) -> Poll<u64> {
//!         match self.seen {
//!             None => {
//!                 self.seen = Some(input.as_int().unwrap_or(0));
//!                 Poll::Pending
//!             }
//!             Some(v) => Poll::Ready(v + 1),
//!         }
//!     }
//! }
//!
//! let mut alloc = RegAlloc::new();
//! let bank = alloc.reserve(1);
//! let mem = ThreadedShm::new(alloc.total(), 1);
//! let ctx = Ctx::new(&mem, Pid(0));
//! ctx.write(bank.get(0), 6u64)?;
//! let mut m = Increment { reg: bank.get(0), seen: None };
//! assert_eq!(drive(&mut m, ctx)?, 7);
//! assert_eq!(ctx.read(bank.get(0))?, Word::Int(7));
//! # Ok::<(), exsel_shm::Crash>(())
//! ```

use crate::{Ctx, OpKind, Pid, RegId, Step, Word};

/// Outcome of driving a poll-based operation one shared-memory step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Poll<T> {
    /// The operation completed with this result.
    Ready(T),
    /// More steps are needed.
    Pending,
}

impl<T> Poll<T> {
    /// Returns the result if ready.
    pub fn ready(self) -> Option<T> {
        match self {
            Poll::Ready(v) => Some(v),
            Poll::Pending => None,
        }
    }
}

/// One shared-memory operation, described before it is performed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShmOp {
    /// Read this register.
    Read(RegId),
    /// Write this word to this register.
    Write(RegId, Word),
}

impl ShmOp {
    /// Whether the operation is a read or a write.
    #[must_use]
    pub fn kind(&self) -> OpKind {
        match self {
            ShmOp::Read(_) => OpKind::Read,
            ShmOp::Write(_, _) => OpKind::Write,
        }
    }

    /// The operation's target register.
    #[must_use]
    pub fn reg(&self) -> RegId {
        match self {
            ShmOp::Read(reg) | ShmOp::Write(reg, _) => *reg,
        }
    }
}

/// An algorithm suspended between shared-memory operations; see the
/// module docs for the contract.
pub trait StepMachine {
    /// The machine's final result.
    type Output;

    /// The next shared-memory operation. Pure; callable repeatedly.
    fn op(&self) -> ShmOp;

    /// The next operation's kind and target register, without
    /// materializing the operand word. Equivalent to (and defaulted
    /// from) `op()`, but overridable where building the full [`ShmOp`]
    /// costs something — e.g. a snapshot update whose pending write
    /// would clone an `Arc`-carrying [`Word::Snap`] on every scheduler
    /// inspection. Must agree with `op()` exactly.
    fn peek(&self) -> (OpKind, RegId) {
        let op = self.op();
        (op.kind(), op.reg())
    }

    /// Consumes the result of the operation last described by
    /// [`StepMachine::op`] (a borrow of the read value, or
    /// [`Word::Null`] for writes) and transitions. Machines that keep
    /// the value clone it; machines that can tell from the borrow that
    /// nothing changed (snapshot scanners comparing sequence numbers)
    /// skip the clone.
    fn advance(&mut self, input: &Word) -> Poll<Self::Output>;

    /// Re-initializes the machine to its just-constructed state so a
    /// pool can re-drive the same storage across trials. `pid` is the
    /// process identity of the next trial; machines built for a specific
    /// pid (slot-addressed algorithms) re-derive their slot from it,
    /// everyone else may ignore it. Machines whose construction captured
    /// a pid must be reset with that same pid.
    ///
    /// # The pooling contract
    ///
    /// `reset` is what turns a machine into *reusable storage*: a
    /// `MachinePool` calls it on every machine at the start of every
    /// trial (including the first), and a reset machine must be
    /// **observationally identical** to a freshly constructed one — the
    /// same operation sequence against the same schedule (the pooled
    /// determinism suite enforces this for every family). Resets happen
    /// **in place**: buffers keep their capacity, caches that would be
    /// invalid across trials (e.g. a snapshot scanner's generation-tag
    /// cache — register sequence numbers restart with the bank) are
    /// cleared, not reallocated. After the first trial has stretched
    /// every buffer, steady-state resets must not touch the allocator.
    ///
    /// Every production machine in this workspace opts in: the snapshot
    /// `ScanOp`/`UpdateOp` (exsel-shm); `CompeteOp`, `SplitWalkOp`,
    /// `MajorityOp`, `SnapshotRenameOp`, `EfficientOp` and the
    /// composite `Staged`/`Piped` renamers (exsel-core, where composite
    /// stages reset by rebuilding their current boxed stage);
    /// `FirstStoreOp` (exsel-storecollect); `NamingMachine` and
    /// `DepositOp` (exsel-unbounded); and the delegating wrappers
    /// `MachineSet`, `MapOutput`, `&mut M`, `Box<M>` (resettable iff
    /// their inner machine is).
    ///
    /// The **default implementation panics**: the ones still on that
    /// path are ad-hoc machines — doc examples, test fixtures, bespoke
    /// one-shot machines built in experiment closures — and any machine
    /// a future contributor has not yet audited for in-place reuse. A
    /// pool refuses nothing at compile time, so the first reset of an
    /// unsupported machine fails loudly instead of silently rerunning a
    /// finished machine.
    fn reset(&mut self, pid: Pid) {
        let _ = pid;
        panic!("this StepMachine does not support pooled reuse (reset)");
    }

    /// Performs exactly one shared-memory operation through `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Crash`] if the process has been crashed; the
    /// machine is then mid-operation and must not be driven further.
    fn poll(&mut self, ctx: Ctx<'_>) -> Step<Poll<Self::Output>> {
        match self.op() {
            ShmOp::Read(reg) => {
                let value = ctx.read(reg)?;
                Ok(self.advance(&value))
            }
            ShmOp::Write(reg, word) => {
                ctx.write(reg, word)?;
                Ok(self.advance(&Word::Null))
            }
        }
    }

    /// Post-processes the machine's output through `f`.
    fn map_output<O, F>(self, f: F) -> MapOutput<Self, F>
    where
        Self: Sized,
        F: FnMut(Self::Output) -> O,
    {
        MapOutput { inner: self, f }
    }
}

impl<M: StepMachine + ?Sized> StepMachine for &mut M {
    type Output = M::Output;
    fn op(&self) -> ShmOp {
        (**self).op()
    }
    fn peek(&self) -> (OpKind, RegId) {
        (**self).peek()
    }
    fn advance(&mut self, input: &Word) -> Poll<M::Output> {
        (**self).advance(input)
    }
    fn reset(&mut self, pid: Pid) {
        (**self).reset(pid);
    }
}

impl<M: StepMachine + ?Sized> StepMachine for Box<M> {
    type Output = M::Output;
    fn op(&self) -> ShmOp {
        (**self).op()
    }
    fn peek(&self) -> (OpKind, RegId) {
        (**self).peek()
    }
    fn advance(&mut self, input: &Word) -> Poll<M::Output> {
        (**self).advance(input)
    }
    fn reset(&mut self, pid: Pid) {
        (**self).reset(pid);
    }
}

/// See [`StepMachine::map_output`].
#[derive(Clone, Debug)]
pub struct MapOutput<M, F> {
    inner: M,
    f: F,
}

impl<M, O, F> StepMachine for MapOutput<M, F>
where
    M: StepMachine,
    F: FnMut(M::Output) -> O,
{
    type Output = O;
    fn op(&self) -> ShmOp {
        self.inner.op()
    }
    fn peek(&self) -> (OpKind, RegId) {
        self.inner.peek()
    }
    fn advance(&mut self, input: &Word) -> Poll<O> {
        match self.inner.advance(input) {
            Poll::Ready(out) => Poll::Ready((self.f)(out)),
            Poll::Pending => Poll::Pending,
        }
    }
    fn reset(&mut self, pid: Pid) {
        self.inner.reset(pid);
    }
}

/// Runs `machine` to completion through `ctx`, one shared-memory
/// operation per poll — the blocking adapter over the step-machine form.
///
/// # Errors
///
/// Returns [`crate::Crash`] if the process crashes mid-run.
pub fn drive<M: StepMachine + ?Sized>(machine: &mut M, ctx: Ctx<'_>) -> Step<M::Output> {
    loop {
        if let Poll::Ready(out) = machine.poll(ctx)? {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pid, RegAlloc, ThreadedShm};

    /// Writes `token`, then reads it back.
    struct WriteRead {
        reg: RegId,
        token: u64,
        wrote: bool,
    }

    impl StepMachine for WriteRead {
        type Output = Word;
        fn op(&self) -> ShmOp {
            if self.wrote {
                ShmOp::Read(self.reg)
            } else {
                ShmOp::Write(self.reg, Word::Int(self.token))
            }
        }
        fn advance(&mut self, input: &Word) -> Poll<Word> {
            if self.wrote {
                Poll::Ready(input.clone())
            } else {
                self.wrote = true;
                Poll::Pending
            }
        }
        fn reset(&mut self, _pid: Pid) {
            self.wrote = false;
        }
    }

    fn setup() -> (RegId, ThreadedShm) {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(1);
        (bank.get(0), ThreadedShm::new(alloc.total(), 1))
    }

    #[test]
    fn poll_performs_exactly_one_op() {
        let (reg, mem) = setup();
        let ctx = Ctx::new(&mem, Pid(0));
        let mut m = WriteRead {
            reg,
            token: 9,
            wrote: false,
        };
        assert_eq!(m.poll(ctx).unwrap(), Poll::Pending);
        assert_eq!(ctx.steps(), 1);
        assert_eq!(m.poll(ctx).unwrap(), Poll::Ready(Word::Int(9)));
        assert_eq!(ctx.steps(), 2);
    }

    #[test]
    fn drive_runs_to_completion() {
        let (reg, mem) = setup();
        let ctx = Ctx::new(&mem, Pid(0));
        let mut m = WriteRead {
            reg,
            token: 4,
            wrote: false,
        };
        assert_eq!(drive(&mut m, ctx).unwrap(), Word::Int(4));
    }

    #[test]
    fn op_is_pure_and_repeatable() {
        let (reg, _mem) = setup();
        let m = WriteRead {
            reg,
            token: 1,
            wrote: false,
        };
        assert_eq!(m.op(), m.op());
        assert_eq!(m.op().kind(), OpKind::Write);
        assert_eq!(m.op().reg(), reg);
    }

    #[test]
    fn map_output_transforms_result() {
        let (reg, mem) = setup();
        let ctx = Ctx::new(&mem, Pid(0));
        let mut m = WriteRead {
            reg,
            token: 3,
            wrote: false,
        }
        .map_output(|w| w.expect_int() * 10);
        assert_eq!(drive(&mut m, ctx).unwrap(), 30);
    }

    #[test]
    fn crash_surfaces_through_poll() {
        let (reg, mem) = setup();
        let ctx = Ctx::new(&mem, Pid(0));
        mem.crash(Pid(0));
        let mut m = WriteRead {
            reg,
            token: 2,
            wrote: false,
        };
        assert!(m.poll(ctx).is_err());
    }

    #[test]
    fn peek_defaults_to_op() {
        let (reg, _mem) = setup();
        let m = WriteRead {
            reg,
            token: 1,
            wrote: false,
        };
        assert_eq!(m.peek(), (m.op().kind(), m.op().reg()));
    }

    #[test]
    fn reset_reinitializes_for_another_run() {
        let (reg, mem) = setup();
        let ctx = Ctx::new(&mem, Pid(0));
        let mut m = WriteRead {
            reg,
            token: 5,
            wrote: false,
        };
        assert_eq!(drive(&mut m, ctx).unwrap(), Word::Int(5));
        m.reset(Pid(0));
        assert_eq!(m.op().kind(), OpKind::Write);
        assert_eq!(drive(&mut m, ctx).unwrap(), Word::Int(5));
    }

    #[test]
    #[should_panic(expected = "does not support pooled reuse")]
    fn reset_defaults_to_a_loud_panic() {
        struct NoReset(RegId);
        impl StepMachine for NoReset {
            type Output = ();
            fn op(&self) -> ShmOp {
                ShmOp::Read(self.0)
            }
            fn advance(&mut self, _input: &Word) -> Poll<()> {
                Poll::Ready(())
            }
        }
        let (reg, _mem) = setup();
        NoReset(reg).reset(Pid(0));
    }

    #[test]
    fn boxed_and_borrowed_machines_delegate() {
        let (reg, mem) = setup();
        let ctx = Ctx::new(&mem, Pid(0));
        let mut boxed: Box<dyn StepMachine<Output = Word>> = Box::new(WriteRead {
            reg,
            token: 7,
            wrote: false,
        });
        assert_eq!(boxed.op().kind(), OpKind::Write);
        assert_eq!(drive(&mut boxed, ctx).unwrap(), Word::Int(7));
    }
}
