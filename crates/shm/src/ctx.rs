//! Per-process memory handle.

use crate::{Memory, Pid, RegId, Step, Word};

/// A process's handle on shared memory: the memory plus the caller's
/// process id. All algorithms in the stack are written against `Ctx`, so
/// the same code runs unchanged on [`crate::ThreadedShm`] (real threads)
/// and on the deterministic simulator in `exsel-sim`.
///
/// `Ctx` is `Copy`; pass it by value.
///
/// ```
/// use exsel_shm::{Ctx, Pid, RegAlloc, ThreadedShm, Word};
/// let mut alloc = RegAlloc::new();
/// let bank = alloc.reserve(1);
/// let mem = ThreadedShm::new(alloc.total(), 1);
/// let ctx = Ctx::new(&mem, Pid(0));
/// ctx.write(bank.get(0), 42u64)?;
/// assert_eq!(ctx.read(bank.get(0))?.as_int(), Some(42));
/// # Ok::<(), exsel_shm::Crash>(())
/// ```
#[derive(Copy, Clone)]
pub struct Ctx<'m> {
    mem: &'m dyn Memory,
    pid: Pid,
}

impl<'m> Ctx<'m> {
    /// Creates a handle for process `pid` on `mem`.
    #[must_use]
    pub fn new(mem: &'m dyn Memory, pid: Pid) -> Self {
        Ctx { mem, pid }
    }

    /// The calling process's id.
    #[must_use]
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The underlying memory.
    #[must_use]
    pub fn memory(&self) -> &'m dyn Memory {
        self.mem
    }

    /// Reads a register (one local step).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Crash`] if this process has been crashed.
    pub fn read(&self, reg: RegId) -> Step<Word> {
        self.mem.read(self.pid, reg)
    }

    /// Writes a register (one local step).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Crash`] if this process has been crashed.
    pub fn write(&self, reg: RegId, word: impl Into<Word>) -> Step<()> {
        self.mem.write(self.pid, reg, word.into())
    }

    /// Local steps this process has taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.mem.steps(self.pid)
    }
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("pid", &self.pid).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegAlloc, ThreadedShm};

    #[test]
    fn steps_are_counted_per_process() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(2);
        let mem = ThreadedShm::new(alloc.total(), 2);
        let c0 = Ctx::new(&mem, Pid(0));
        let c1 = Ctx::new(&mem, Pid(1));
        c0.write(bank.get(0), 1u64).unwrap();
        c0.read(bank.get(0)).unwrap();
        c1.read(bank.get(1)).unwrap();
        assert_eq!(c0.steps(), 2);
        assert_eq!(c1.steps(), 1);
    }

    #[test]
    fn debug_shows_pid() {
        let mem = ThreadedShm::new(1, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        assert!(format!("{ctx:?}").contains("pid"));
    }
}
