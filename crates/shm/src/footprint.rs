//! Declared register footprints: the access contracts behind the paper's
//! single-writer discipline.
//!
//! Every algorithm in the stack lays out its registers statically through
//! [`crate::RegAlloc`], and the correctness arguments lean on an access
//! discipline the layout alone cannot express: a process writes only its
//! own snapshot slot, its own suite of naming registers, its own row of the
//! help matrix — while everything else is read-shared or written under a
//! known multi-writer protocol. The [`Footprint`] trait lets each machine
//! family *declare* that discipline as data: a [`FootprintSpec`] is a list
//! of phase-tagged extents ([`Extent`]), each an access class over a
//! [`RegRange`].
//!
//! Consumers live in `exsel-analysis`: a static non-interference pass
//! proves pairwise that no two processes claim exclusive ownership of
//! overlapping registers (and that shared writes never touch someone's
//! exclusive extent), and a dynamic checker validates every granted
//! operation of a run against the declaration. The spec is deliberately
//! conservative — an over-approximation of what the machine may touch; a
//! machine operating outside its declared footprint is a bug either in the
//! machine or in the declaration, and both are worth a loud failure.

use crate::{Pid, RegRange};

/// How a machine may touch an extent of registers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Access {
    /// The registers are only read.
    Read,
    /// The registers may be written, under a protocol that tolerates
    /// multiple writers (e.g. the majority-voting registers, or a
    /// store&collect value array indexed by dynamically acquired names).
    WriteShared,
    /// The registers are written by this process **only**: the
    /// single-writer discipline the static pass proves pairwise. Writing
    /// here from any other process is an ownership violation.
    WriteExclusive,
}

/// One phase-tagged access declaration: `access` rights over `range`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Extent {
    /// Which phase of the algorithm the extent belongs to (a static
    /// label, e.g. `"naming.suite"` or `"deposit.help_row"`). Purely
    /// diagnostic: violation reports cite it so the offending state is
    /// recognizable without reverse-engineering register indices.
    pub phase: &'static str,
    /// The access class.
    pub access: Access,
    /// The registers covered.
    pub range: RegRange,
}

/// A machine's declared footprint: every register it may touch, phase by
/// phase, as seen from one process identity.
///
/// Build one with the phase-scoped builder:
///
/// ```
/// use exsel_shm::{FootprintSpec, RegAlloc};
///
/// let mut alloc = RegAlloc::new();
/// let bank = alloc.reserve(8);
/// let mut spec = FootprintSpec::default();
/// spec.phase("demo")
///     .reads(bank)
///     .writes_excl(bank.slice(2, 1));
/// assert_eq!(spec.extents().len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FootprintSpec {
    extents: Vec<Extent>,
}

impl FootprintSpec {
    /// Starts declaring extents for phase `phase`. Extents accumulate;
    /// the same phase may be opened repeatedly.
    pub fn phase(&mut self, phase: &'static str) -> PhaseBuilder<'_> {
        PhaseBuilder { spec: self, phase }
    }

    /// All declared extents, in declaration order. Empty ranges are
    /// dropped at declaration time, so every returned extent is non-empty.
    #[must_use]
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Whether nothing has been declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Removes every declared extent, keeping the allocation.
    pub fn clear(&mut self) {
        self.extents.clear();
    }

    fn push(&mut self, phase: &'static str, access: Access, range: RegRange) {
        if !range.is_empty() {
            self.extents.push(Extent {
                phase,
                access,
                range,
            });
        }
    }
}

/// Declares extents for one phase of a [`FootprintSpec`]; see
/// [`FootprintSpec::phase`].
pub struct PhaseBuilder<'a> {
    spec: &'a mut FootprintSpec,
    phase: &'static str,
}

impl PhaseBuilder<'_> {
    /// Declares `range` as read-only for this phase.
    pub fn reads(self, range: RegRange) -> Self {
        self.spec.push(self.phase, Access::Read, range);
        self
    }

    /// Declares `range` as multi-writer-writable for this phase.
    pub fn writes_shared(self, range: RegRange) -> Self {
        self.spec.push(self.phase, Access::WriteShared, range);
        self
    }

    /// Declares `range` as exclusively owned (single-writer) by this
    /// process for this phase.
    pub fn writes_excl(self, range: RegRange) -> Self {
        self.spec.push(self.phase, Access::WriteExclusive, range);
        self
    }
}

/// Declared static register footprint of an algorithm instance, per
/// process identity.
///
/// Implementors append to `spec` rather than returning a fresh one so
/// that composite algorithms (a renaming pipeline, a session of naming +
/// store&collect + deposit) can merge their components' footprints into a
/// single declaration for the process.
pub trait Footprint {
    /// Appends every extent process `pid` may touch to `spec`.
    fn footprint(&self, pid: Pid, spec: &mut FootprintSpec);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RegAlloc;

    #[test]
    fn builder_tags_phases_and_drops_empty_ranges() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(4);
        let mut spec = FootprintSpec::default();
        spec.phase("a")
            .reads(bank)
            .writes_excl(bank.slice(1, 1))
            .writes_shared(RegRange::empty());
        spec.phase("b").writes_shared(bank.slice(2, 2));
        let ext = spec.extents();
        assert_eq!(ext.len(), 3);
        assert_eq!(ext[0].phase, "a");
        assert_eq!(ext[0].access, Access::Read);
        assert_eq!(ext[1].access, Access::WriteExclusive);
        assert_eq!(ext[1].range.start(), 1);
        assert_eq!(ext[2].phase, "b");
        assert_eq!(ext[2].access, Access::WriteShared);
    }

    #[test]
    fn clear_keeps_reuse_cheap() {
        let mut alloc = RegAlloc::new();
        let bank = alloc.reserve(2);
        let mut spec = FootprintSpec::default();
        spec.phase("x").reads(bank);
        assert!(!spec.is_empty());
        spec.clear();
        assert!(spec.is_empty());
    }
}
