//! The memory-access trait and identifiers.

use std::fmt;

use crate::{Step, Word};

/// Index of a process, `0..num_processes`.
///
/// This is the *system* identity used for step accounting and crash
/// injection. It is distinct from the process's *original name* in `[N]`,
/// which is an algorithm input (renaming algorithms may not use `Pid` for
/// symmetry-breaking — only original names and register contents).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub usize);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a shared register.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub usize);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// The kind of a shared-memory operation, exposed to schedulers so that the
/// lower-bound adversary can split pending processes into readers and
/// writers before deciding whom to advance (Theorem 6).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// A read of a register.
    Read,
    /// A write to a register.
    Write,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read => write!(f, "read"),
            OpKind::Write => write!(f, "write"),
        }
    }
}

/// A collection of shared read/write registers.
///
/// Each `read`/`write` is one **local step** of the calling process — the
/// paper's complexity measure — and is charged to `pid` by the
/// implementation. Operations fail with [`crate::Crash`] once the
/// environment has crashed the process; the caller must then return
/// immediately (use `?`).
///
/// Implementations must be linearizable: every operation appears to take
/// effect atomically between its invocation and response.
pub trait Memory: Sync {
    /// Reads register `reg` on behalf of process `pid` (one local step).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Crash`] if the process has been crashed.
    fn read(&self, pid: Pid, reg: RegId) -> Step<Word>;

    /// Writes `word` to register `reg` on behalf of `pid` (one local step).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Crash`] if the process has been crashed.
    fn write(&self, pid: Pid, reg: RegId, word: Word) -> Step<()>;

    /// Number of registers.
    fn num_registers(&self) -> usize;

    /// Number of processes known to this memory.
    fn num_processes(&self) -> usize;

    /// Local steps (shared-memory accesses) taken by `pid` so far.
    fn steps(&self, pid: Pid) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_impls() {
        assert_eq!(Pid(3).to_string(), "p3");
        assert_eq!(RegId(4).to_string(), "R4");
        assert_eq!(OpKind::Read.to_string(), "read");
        assert_eq!(OpKind::Write.to_string(), "write");
    }

    #[test]
    fn ids_order() {
        assert!(Pid(1) < Pid(2));
        assert!(RegId(0) < RegId(10));
    }
}
