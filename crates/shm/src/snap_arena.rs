//! The snapshot record/view recycling arena — see [`SnapArena`].

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{SnapRecord, Word};

/// Cumulative allocation telemetry of one [`SnapArena`]. All counters
/// are monotone over the arena's lifetime; isolate a window with
/// [`SnapArenaStats::since`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapArenaStats {
    /// [`SnapRecord`]s freshly heap-allocated (arena miss, or recycling
    /// disabled).
    pub records_fresh: u64,
    /// Updates served by mutating a retired record in place.
    pub records_recycled: u64,
    /// Direct-scan views freshly collected (arena miss, or recycling
    /// disabled).
    pub views_fresh: u64,
    /// Direct-scan views served by refilling a retired buffer in place.
    pub views_recycled: u64,
    /// Direct scans that returned the scanner's generation-tagged cached
    /// view because no register changed since its last direct scan.
    pub view_cache_hits: u64,
    /// Most records the arena ever tracked at once — the steady-state
    /// record footprint of the object (registers + in-flight caches).
    pub peak_records: u64,
    /// Most view buffers the arena ever tracked at once.
    pub peak_views: u64,
}

impl SnapArenaStats {
    /// Folds another window in: counters add, peaks take the max.
    pub fn merge(&mut self, other: &SnapArenaStats) {
        self.records_fresh += other.records_fresh;
        self.records_recycled += other.records_recycled;
        self.views_fresh += other.views_fresh;
        self.views_recycled += other.views_recycled;
        self.view_cache_hits += other.view_cache_hits;
        self.peak_records = self.peak_records.max(other.peak_records);
        self.peak_views = self.peak_views.max(other.peak_views);
    }

    /// The telemetry accumulated since an `earlier` reading of the same
    /// arena: counters subtract (saturating), peaks keep the current
    /// values.
    #[must_use]
    pub fn since(&self, earlier: &SnapArenaStats) -> SnapArenaStats {
        SnapArenaStats {
            records_fresh: self.records_fresh.saturating_sub(earlier.records_fresh),
            records_recycled: self
                .records_recycled
                .saturating_sub(earlier.records_recycled),
            views_fresh: self.views_fresh.saturating_sub(earlier.views_fresh),
            views_recycled: self.views_recycled.saturating_sub(earlier.views_recycled),
            view_cache_hits: self.view_cache_hits.saturating_sub(earlier.view_cache_hits),
            peak_records: self.peak_records,
            peak_views: self.peak_views,
        }
    }

    /// Objects freshly heap-allocated in this window — the number the
    /// recycling layer exists to drive to zero at steady state.
    #[must_use]
    pub fn fresh_allocations(&self) -> u64 {
        self.records_fresh + self.views_fresh
    }

    /// Buffers served from the arena in this window (in-place refills
    /// plus cached-view hits).
    #[must_use]
    pub fn recycled(&self) -> u64 {
        self.records_recycled + self.views_recycled + self.view_cache_hits
    }
}

/// Per-[`Snapshot`](crate::Snapshot) record/view recycling arena.
///
/// A snapshot object's memory is dominated by its [`SnapRecord`]s: every
/// component register holds one, and every record embeds a length-`n`
/// view, so one object materializes O(n²) words — and, without
/// recycling, every update heap-allocates a fresh record and every
/// successful direct scan collects a fresh view, making the snapshot the
/// last steady-state allocator of pooled trial loops.
///
/// The arena turns those allocations into in-place refills. It tracks
/// every record an [`UpdateOp`](crate::snapshot::UpdateOp) installs and
/// every view a [`ScanOp`](crate::snapshot::ScanOp) returns from a
/// direct double-collect, as `Arc` clones in two free-lists. A tracked
/// buffer is **reclaimable** exactly when its `Arc` is unique again —
/// the arena's clone is the only one left, meaning the record has been
/// displaced from its register *and* dropped from every scanner's
/// collect cache (resp. the view is no longer embedded in any live
/// record or held by any caller). Reclaim checks are
/// [`Arc::get_mut`]-based, so a buffer is only ever mutated under whole-
/// `Arc` exclusivity: concurrent readers can never observe a refill,
/// which is why recycling is invisible to linearizability — and it
/// changes no operation sequence, so traces are bit-identical with the
/// arena on or off ([`Snapshot::recycling`](crate::Snapshot::recycling)
/// keeps the never-recycling baseline available as a differential-test
/// oracle).
///
/// Both free-lists are append-only: buffers are never dropped, so once a
/// trial loop's peak demand has been stretched (warm-up), steady-state
/// snapshot traffic performs **zero** heap allocations and zero frees
/// (`tests/alloc_free.rs` proves it with a counting global allocator).
/// The flip side of never dropping is that a tracked entry pinned by an
/// external holder (a caller retaining a returned view forever) stays on
/// the list — it is skipped by every reclaim scan and retained for the
/// object's lifetime. That retention is bounded by the peak number of
/// simultaneously held buffers (registers + scanner caches + whatever
/// callers keep), which is exactly the object's live footprint; evicting
/// instead would turn those entries into steady-state frees and break
/// the zero-churn guarantee, so the arena deliberately does not.
///
/// Locking: the free-lists (and the recycled/peak telemetry maintained
/// while they are touched) live behind one `parking_lot::Mutex`; the
/// fresh-allocation and cache-hit counters are plain atomics, so the
/// cheapest paths — a scanner's cached-view hit, and every operation of
/// a `recycling(false)` baseline object — never take the lock.
pub struct SnapArena {
    initial: Arc<SnapRecord>,
    recycling: AtomicBool,
    records_fresh: AtomicU64,
    views_fresh: AtomicU64,
    view_cache_hits: AtomicU64,
    inner: Mutex<ArenaInner>,
}

/// Free-lists plus the telemetry only ever updated while they are
/// locked anyway.
#[derive(Default)]
struct ArenaInner {
    records: Vec<Arc<SnapRecord>>,
    views: Vec<Arc<[Word]>>,
    /// Where the next record reclaim scan starts. Scans restart where
    /// the last take succeeded instead of at index 0: `swap_remove`
    /// gradually concentrates pinned (non-unique) entries into whatever
    /// region scans keep starting from, and a fixed origin would make
    /// every take re-walk that pinned prefix — O(pinned) per reclaim.
    /// Rotating amortizes the walk to O(tracked / reclaimable).
    record_cursor: usize,
    /// Where the next view reclaim scan starts; same rotation rationale.
    view_cursor: usize,
    records_recycled: u64,
    views_recycled: u64,
    peak_records: u64,
    peak_views: u64,
}

/// Scans `list` circularly from `*cursor` for a uniquely owned entry,
/// removes and returns it, leaving `*cursor` at the vacated index (now
/// holding the swapped-in tail element).
fn take_unique<T>(list: &mut Vec<Arc<T>>, cursor: &mut usize) -> Option<Arc<T>>
where
    T: ?Sized,
{
    let len = list.len();
    if len == 0 {
        return None;
    }
    let start = *cursor % len;
    for off in 0..len {
        let i = start + off;
        let i = if i < len { i } else { i - len };
        if Arc::get_mut(&mut list[i]).is_some() {
            *cursor = i;
            return Some(list.swap_remove(i));
        }
    }
    None
}

impl SnapArena {
    /// An arena for an `n`-component snapshot object, recycling enabled.
    #[must_use]
    pub(crate) fn new(n: usize) -> Self {
        SnapArena {
            initial: Arc::new(SnapRecord::initial(n)),
            recycling: AtomicBool::new(true),
            records_fresh: AtomicU64::new(0),
            views_fresh: AtomicU64::new(0),
            view_cache_hits: AtomicU64::new(0),
            inner: Mutex::new(ArenaInner::default()),
        }
    }

    /// The object's shared never-written record (generation 0) — one
    /// allocation per object, cloned into every scanner's collect cache.
    #[must_use]
    pub(crate) fn initial(&self) -> &Arc<SnapRecord> {
        &self.initial
    }

    /// Whether in-place recycling is enabled (it is by default; see
    /// [`Snapshot::recycling`](crate::Snapshot::recycling)).
    #[must_use]
    pub fn recycling_enabled(&self) -> bool {
        self.recycling.load(Ordering::Relaxed)
    }

    pub(crate) fn set_recycling(&self, on: bool) {
        self.recycling.store(on, Ordering::Relaxed);
    }

    /// A snapshot of the arena's cumulative telemetry.
    #[must_use]
    pub fn stats(&self) -> SnapArenaStats {
        let inner = self.inner.lock();
        SnapArenaStats {
            records_fresh: self.records_fresh.load(Ordering::Relaxed),
            records_recycled: inner.records_recycled,
            views_fresh: self.views_fresh.load(Ordering::Relaxed),
            views_recycled: inner.views_recycled,
            view_cache_hits: self.view_cache_hits.load(Ordering::Relaxed),
            peak_records: inner.peak_records,
            peak_views: inner.peak_views,
        }
    }

    /// Records currently tracked (for tests and capacity audits).
    #[must_use]
    pub fn cached_records(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// View buffers currently tracked.
    #[must_use]
    pub fn cached_views(&self) -> usize {
        self.inner.lock().views.len()
    }

    /// Pre-populates the free-lists with `records` reclaimable records
    /// and `views` reclaimable view buffers, all uniquely owned and
    /// sized for this object's component count.
    ///
    /// Recycling alone only reaches zero steady-state allocations once
    /// warm-up has stretched the lists to the workload's high-water
    /// demand — a *later* excursion past that mark still allocates.
    /// Bounded workloads (a service harness with a fixed client-slot
    /// count, a pooled sweep with a known machine population) call this
    /// once at construction with a bound on peak live buffers, so even
    /// the first excursion is served from the free-lists. A no-op when
    /// recycling is off.
    pub fn reserve(&self, records: usize, views: usize) {
        if !self.recycling_enabled() {
            return;
        }
        let n = self.initial.view.len();
        let mut inner = self.inner.lock();
        inner.records.reserve(records);
        inner.views.reserve(views + records);
        for _ in 0..records {
            // The record's embedded view must be tracked too: when an
            // update later refills the record, the displaced view would
            // otherwise drop its last reference — a steady-state free.
            let view: Arc<[Word]> = vec![Word::Null; n].into();
            inner.views.push(Arc::clone(&view));
            inner.records.push(Arc::new(SnapRecord {
                seq: 0,
                value: Word::Null,
                view,
            }));
        }
        for _ in 0..views {
            inner.views.push(vec![Word::Null; n].into());
        }
        inner.peak_records = inner.peak_records.max(inner.records.len() as u64);
        inner.peak_views = inner.peak_views.max(inner.views.len() as u64);
    }

    /// Takes a reclaimable (uniquely owned) record off the free-list, if
    /// recycling is on and one exists. The caller owns the only `Arc`
    /// and may mutate the record in place; it must hand the record back
    /// through [`SnapArena::put_record`] once rebuilt.
    pub(crate) fn take_record(&self) -> Option<Arc<SnapRecord>> {
        if !self.recycling_enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let rec = take_unique(&mut inner.records, &mut inner.record_cursor)?;
        inner.records_recycled += 1;
        Some(rec)
    }

    /// Registers an installed record with the arena (tracking it for
    /// future reclaim) and counts the allocation when `fresh`. With
    /// recycling off only the (atomic) counter is kept — the baseline
    /// drops displaced records exactly as the pre-arena code did, and
    /// never takes the lock.
    pub(crate) fn put_record(&self, rec: &Arc<SnapRecord>, fresh: bool) {
        if fresh {
            self.records_fresh.fetch_add(1, Ordering::Relaxed);
        }
        if self.recycling_enabled() {
            let mut inner = self.inner.lock();
            inner.records.push(Arc::clone(rec));
            inner.peak_records = inner.peak_records.max(inner.records.len() as u64);
        }
    }

    /// Takes a reclaimable view buffer off the free-list, if recycling
    /// is on and one exists; the caller owns the only `Arc` and refills
    /// it in place.
    pub(crate) fn take_view(&self) -> Option<Arc<[Word]>> {
        if !self.recycling_enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let view = take_unique(&mut inner.views, &mut inner.view_cursor)?;
        inner.views_recycled += 1;
        Some(view)
    }

    /// Registers a direct-scan view with the arena; see
    /// [`SnapArena::put_record`].
    pub(crate) fn put_view(&self, view: &Arc<[Word]>, fresh: bool) {
        if fresh {
            self.views_fresh.fetch_add(1, Ordering::Relaxed);
        }
        if self.recycling_enabled() {
            let mut inner = self.inner.lock();
            inner.views.push(Arc::clone(view));
            inner.peak_views = inner.peak_views.max(inner.views.len() as u64);
        }
    }

    /// Counts a direct scan served from a scanner's generation-tagged
    /// cached view. Lock-free: this is the cheapest scan outcome and
    /// must stay that way.
    pub(crate) fn note_view_cache_hit(&self) {
        self.view_cache_hits.fetch_add(1, Ordering::Relaxed);
    }
}

impl fmt::Debug for SnapArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (records, views) = {
            let inner = self.inner.lock();
            (inner.records.len(), inner.views.len())
        };
        f.debug_struct("SnapArena")
            .field("n", &self.initial.view.len())
            .field("recycling", &self.recycling_enabled())
            .field("records", &records)
            .field("views", &views)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_reclaimed_only_when_unique() {
        let arena = SnapArena::new(2);
        let rec = Arc::new(SnapRecord {
            seq: 1,
            value: Word::Int(5),
            view: vec![Word::Null; 2].into(),
        });
        arena.put_record(&rec, true);
        // Still shared with `rec` — not reclaimable.
        assert!(arena.take_record().is_none());
        drop(rec);
        let back = arena.take_record().expect("unique record reclaimed");
        assert_eq!(back.seq, 1);
        assert_eq!(arena.cached_records(), 0);
        let stats = arena.stats();
        assert_eq!(stats.records_fresh, 1);
        assert_eq!(stats.records_recycled, 1);
        assert_eq!(stats.peak_records, 1);
    }

    #[test]
    fn views_are_reclaimed_only_when_unique() {
        let arena = SnapArena::new(3);
        let view: Arc<[Word]> = vec![Word::Int(1); 3].into();
        let held = Arc::clone(&view);
        arena.put_view(&view, true);
        drop(view);
        assert!(arena.take_view().is_none(), "caller still holds the view");
        drop(held);
        assert!(arena.take_view().is_some());
        assert_eq!(arena.stats().views_recycled, 1);
    }

    #[test]
    fn disabling_recycling_keeps_counters_but_tracks_nothing() {
        let arena = SnapArena::new(1);
        arena.set_recycling(false);
        let rec = Arc::new(SnapRecord::initial(1));
        arena.put_record(&rec, true);
        drop(rec);
        assert_eq!(arena.cached_records(), 0);
        assert!(arena.take_record().is_none());
        assert_eq!(arena.stats().records_fresh, 1);
    }

    #[test]
    fn reserved_buffers_are_immediately_reclaimable() {
        let arena = SnapArena::new(2);
        arena.reserve(3, 1);
        assert_eq!(arena.cached_records(), 3);
        // Each reserved record's embedded view is tracked too, so a
        // later displacement recycles it instead of freeing it.
        assert_eq!(arena.cached_views(), 4);
        let held: Vec<_> = (0..3)
            .map(|_| arena.take_record().expect("reserved record"))
            .collect();
        assert!(held.iter().all(|rec| rec.view.len() == 2));
        assert!(arena.take_record().is_none());
        // The plain reserved view is free now; the record views stay
        // pinned by the records handed out above.
        assert!(arena.take_view().is_some());
        assert!(arena.take_view().is_none());
        drop(held);
        let stats = arena.stats();
        assert_eq!(stats.records_fresh, 0, "reserve must not count as a miss");
        assert_eq!(stats.records_recycled, 3);
        assert_eq!(stats.views_recycled, 1);
    }

    #[test]
    fn reserve_is_a_no_op_with_recycling_off() {
        let arena = SnapArena::new(1);
        arena.set_recycling(false);
        arena.reserve(4, 4);
        assert_eq!(arena.cached_records(), 0);
        assert_eq!(arena.cached_views(), 0);
    }

    #[test]
    fn stats_windows_subtract_and_merge() {
        let mut a = SnapArenaStats {
            records_fresh: 5,
            views_fresh: 3,
            records_recycled: 7,
            views_recycled: 2,
            view_cache_hits: 4,
            peak_records: 9,
            peak_views: 6,
        };
        let earlier = SnapArenaStats {
            records_fresh: 2,
            views_fresh: 1,
            ..SnapArenaStats::default()
        };
        let window = a.since(&earlier);
        assert_eq!(window.records_fresh, 3);
        assert_eq!(window.views_fresh, 2);
        assert_eq!(window.fresh_allocations(), 5);
        assert_eq!(window.recycled(), 13);
        assert_eq!(window.peak_records, 9);
        let before = a;
        a.merge(&SnapArenaStats {
            records_fresh: 1,
            peak_records: 20,
            ..SnapArenaStats::default()
        });
        assert_eq!(a.records_fresh, before.records_fresh + 1);
        assert_eq!(a.peak_records, 20);
    }
}
