//! Real-concurrency shared memory for OS threads.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::{Crash, Memory, Pid, RegId, Step, Word};

/// Pads (and aligns) its contents to a cache line, so that adjacent
/// registers — hammered concurrently by different cores — never share one.
/// 128 bytes covers the spatial-prefetcher pairing on x86 and the 128-byte
/// lines of some arm64 parts.
#[repr(align(128))]
#[derive(Debug, Default)]
struct CachePadded<T>(T);

/// Per-process accounting, one padded block per process so that the hot
/// step counters of concurrently running processes never false-share.
#[repr(align(128))]
#[derive(Debug)]
struct ProcState {
    steps: AtomicU64,
    crashed: AtomicBool,
    /// Step index at which the process's next operation crashes
    /// (`u64::MAX` = never).
    crash_at: AtomicU64,
}

impl Default for ProcState {
    fn default() -> Self {
        ProcState {
            steps: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            crash_at: AtomicU64::new(u64::MAX),
        }
    }
}

/// Shared memory backed by one linearizable multi-reader multi-writer
/// register per cell, for running algorithms on real OS threads (benches,
/// examples). Each register is a cache-line-padded
/// `parking_lot::RwLock<Word>`; a lock-held read or write of a single cell
/// is an atomic register operation, and the padding keeps contention on
/// one register from slowing neighbouring registers down.
///
/// Crash injection: [`ThreadedShm::crash`] marks a process crashed; its next
/// operation returns [`Crash`] and the algorithm unwinds.
///
/// ```
/// use exsel_shm::{Ctx, Memory, Pid, RegId, ThreadedShm, Word};
/// let mem = ThreadedShm::new(8, 2);
/// std::thread::scope(|s| {
///     s.spawn(|| Ctx::new(&mem, Pid(0)).write(RegId(0), 1u64));
///     s.spawn(|| Ctx::new(&mem, Pid(1)).write(RegId(1), 2u64));
/// });
/// assert_eq!(mem.read(Pid(0), RegId(1)).unwrap(), Word::Int(2));
/// ```
pub struct ThreadedShm {
    regs: Vec<CachePadded<RwLock<Word>>>,
    procs: Vec<ProcState>,
}

impl ThreadedShm {
    /// Creates a memory with `num_registers` registers (all `Null`) serving
    /// `num_processes` processes.
    #[must_use]
    pub fn new(num_registers: usize, num_processes: usize) -> Self {
        ThreadedShm {
            regs: (0..num_registers).map(|_| CachePadded::default()).collect(),
            procs: (0..num_processes).map(|_| ProcState::default()).collect(),
        }
    }

    /// Crashes process `pid`: every subsequent operation by it fails.
    pub fn crash(&self, pid: Pid) {
        self.procs[pid.0].crashed.store(true, Ordering::SeqCst);
    }

    /// Schedules a deterministic crash: `pid`'s operation number `step`
    /// (0-based local step index) and everything after it fail. Used to
    /// "freeze" a process at an exact point of an algorithm (e.g. between
    /// a repository reservation and its write — Corollary 2's
    /// construction).
    pub fn crash_at_step(&self, pid: Pid, step: u64) {
        self.procs[pid.0].crash_at.store(step, Ordering::SeqCst);
    }

    /// Whether `pid` has been crashed.
    #[must_use]
    pub fn is_crashed(&self, pid: Pid) -> bool {
        self.procs[pid.0].crashed.load(Ordering::SeqCst)
    }

    /// Maximum local steps over all processes.
    #[must_use]
    pub fn max_steps(&self) -> u64 {
        self.procs
            .iter()
            .map(|p| p.steps.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Total local steps over all processes.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.procs
            .iter()
            .map(|p| p.steps.load(Ordering::Relaxed))
            .sum()
    }

    fn charge(&self, pid: Pid) -> Step<()> {
        let proc = &self.procs[pid.0];
        if proc.crashed.load(Ordering::SeqCst) {
            return Err(Crash);
        }
        if proc.steps.load(Ordering::Relaxed) >= proc.crash_at.load(Ordering::SeqCst) {
            proc.crashed.store(true, Ordering::SeqCst);
            return Err(Crash);
        }
        proc.steps.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Memory for ThreadedShm {
    fn read(&self, pid: Pid, reg: RegId) -> Step<Word> {
        self.charge(pid)?;
        Ok(self.regs[reg.0].0.read().clone())
    }

    fn write(&self, pid: Pid, reg: RegId, word: Word) -> Step<()> {
        self.charge(pid)?;
        *self.regs[reg.0].0.write() = word;
        Ok(())
    }

    fn num_registers(&self) -> usize {
        self.regs.len()
    }

    fn num_processes(&self) -> usize {
        self.procs.len()
    }

    fn steps(&self, pid: Pid) -> u64 {
        self.procs[pid.0].steps.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mem = ThreadedShm::new(2, 1);
        mem.write(Pid(0), RegId(1), Word::Pair(1, 2)).unwrap();
        assert_eq!(mem.read(Pid(0), RegId(1)).unwrap(), Word::Pair(1, 2));
        assert_eq!(mem.read(Pid(0), RegId(0)).unwrap(), Word::Null);
    }

    #[test]
    fn crash_stops_process() {
        let mem = ThreadedShm::new(1, 2);
        mem.write(Pid(0), RegId(0), Word::Int(1)).unwrap();
        mem.crash(Pid(0));
        assert!(mem.is_crashed(Pid(0)));
        assert_eq!(mem.read(Pid(0), RegId(0)), Err(Crash));
        assert_eq!(mem.write(Pid(0), RegId(0), Word::Int(2)), Err(Crash));
        // Other processes are unaffected, and the pre-crash write persists.
        assert_eq!(mem.read(Pid(1), RegId(0)).unwrap(), Word::Int(1));
    }

    #[test]
    fn crashed_ops_are_not_charged() {
        let mem = ThreadedShm::new(1, 1);
        mem.write(Pid(0), RegId(0), Word::Int(1)).unwrap();
        mem.crash(Pid(0));
        let _ = mem.read(Pid(0), RegId(0));
        assert_eq!(mem.steps(Pid(0)), 1);
    }

    #[test]
    fn step_aggregates() {
        let mem = ThreadedShm::new(1, 3);
        for _ in 0..3 {
            mem.read(Pid(0), RegId(0)).unwrap();
        }
        mem.read(Pid(2), RegId(0)).unwrap();
        assert_eq!(mem.max_steps(), 3);
        assert_eq!(mem.total_steps(), 4);
        assert_eq!(mem.num_registers(), 1);
        assert_eq!(mem.num_processes(), 3);
    }

    #[test]
    fn crash_at_step_is_deterministic() {
        let mem = ThreadedShm::new(1, 1);
        mem.crash_at_step(Pid(0), 3);
        for _ in 0..3 {
            mem.read(Pid(0), RegId(0)).unwrap();
        }
        assert_eq!(mem.read(Pid(0), RegId(0)), Err(Crash));
        assert!(mem.is_crashed(Pid(0)));
        assert_eq!(mem.steps(Pid(0)), 3);
    }

    #[test]
    fn register_cells_are_cache_padded() {
        assert!(std::mem::align_of::<CachePadded<RwLock<Word>>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<RwLock<Word>>>() >= 128);
        assert!(std::mem::align_of::<ProcState>() >= 128);
    }

    #[test]
    fn concurrent_writers_linearize() {
        let mem = ThreadedShm::new(1, 8);
        std::thread::scope(|s| {
            for p in 0..8 {
                let mem = &mem;
                s.spawn(move || {
                    for i in 0..100 {
                        mem.write(Pid(p), RegId(0), Word::Pair(p as u64, i))
                            .unwrap();
                        let w = mem.read(Pid(p), RegId(0)).unwrap();
                        // Whatever we read is a complete pair some process wrote.
                        assert!(w.as_pair().is_some());
                    }
                });
            }
        });
        assert_eq!(mem.total_steps(), 8 * 200);
    }
}
