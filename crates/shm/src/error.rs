//! Crash faults.

use std::fmt;

/// The process executing the operation has crashed.
///
/// In the paper's model a crashed process simply takes no further steps.
/// Operationally we surface the crash at the next shared-memory access as an
/// error, which the algorithm propagates with `?` all the way out of its
/// entry point — unwinding the process without it taking any further step,
/// exactly as the model prescribes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Crash;

impl fmt::Display for Crash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "process crashed")
    }
}

impl std::error::Error for Crash {}

/// Result of one or more local steps: either the value, or the process has
/// crashed and must stop immediately.
pub type Step<T> = Result<T, Crash>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_error() {
        let e: Box<dyn std::error::Error> = Box::new(Crash);
        assert_eq!(e.to_string(), "process crashed");
    }

    #[test]
    fn question_mark_propagates() {
        fn inner() -> Step<u64> {
            Err(Crash)
        }
        fn outer() -> Step<u64> {
            let v = inner()?;
            Ok(v + 1)
        }
        assert_eq!(outer(), Err(Crash));
    }
}
