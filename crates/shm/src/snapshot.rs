//! Wait-free atomic snapshot object (Afek, Attiya, Dolev, Gafni, Merritt,
//! Shavit — "Atomic snapshots of shared memory", JACM 1993), unbounded
//! sequence-number variant.
//!
//! An `n`-component snapshot object supports `update(slot, value)` and
//! `scan() -> [values; n]` such that all operations are linearizable and
//! wait-free. The construction stores, in each component register, a
//! [`SnapRecord`]: the value, a per-writer sequence number, and an *embedded
//! view* — a scan taken by the writer during its update. A scanner collects
//! all components repeatedly; two identical consecutive collects yield a
//! *direct* scan, and a writer observed to move twice yields a *borrowed*
//! scan (its embedded view lies entirely within the scanner's interval).
//!
//! Blocking ([`Snapshot::scan`], [`Snapshot::update`]) and step-machine
//! ([`Snapshot::begin_scan`], [`Snapshot::begin_update`]) drivers are
//! provided. [`ScanOp`] and [`UpdateOp`] are [`StepMachine`]s — **exactly
//! one shared-memory operation per step** — which is what lets
//! `Altruistic-Deposit` interleave two activities at event granularity as
//! the paper prescribes, and what lets the `exsel-sim` step engine run
//! snapshot-based algorithms without blocking threads.
//!
//! Memory-wise the object is **compacted** by a per-object [`SnapArena`]:
//! displaced records and retired view buffers are reclaimed under `Arc`
//! uniqueness and refilled in place, so steady-state updates and scans
//! perform no heap allocation (see the arena's docs for the reclaim
//! invariants and `ARCHITECTURE.md` for the full lifecycle).
//!
//! Each slot is single-writer: at most one process may call `update` on a
//! given slot (the usual SWMR snapshot discipline). Scans may be invoked by
//! anyone.

use std::sync::Arc;

use crate::step::{ShmOp, StepMachine};
use crate::{drive, Ctx, OpKind, Pid, RegAlloc, RegId, RegRange, SnapRecord, Step, Word};

pub use crate::snap_arena::{SnapArena, SnapArenaStats};
pub use crate::step::Poll;

/// An `n`-component wait-free atomic snapshot object laid out over `n`
/// shared registers.
///
/// The object carries a [`SnapArena`]: displaced records and retired
/// view buffers are reclaimed (under `Arc` uniqueness) and refilled in
/// place instead of reallocated, so steady-state snapshot traffic is
/// heap-silent. Recycling changes no operation sequence and no returned
/// value; [`Snapshot::recycling`] keeps the never-recycling baseline
/// available as a differential-test oracle.
///
/// ```
/// use exsel_shm::{Ctx, Pid, RegAlloc, Snapshot, ThreadedShm, Word};
/// let mut alloc = RegAlloc::new();
/// let snap = Snapshot::new(&mut alloc, 2);
/// let mem = ThreadedShm::new(alloc.total(), 2);
/// let ctx = Ctx::new(&mem, Pid(0));
/// snap.update(ctx, 0, Word::Int(5))?;
/// let view = snap.scan(ctx)?;
/// assert_eq!(view[0], Word::Int(5));
/// assert_eq!(view[1], Word::Null);
/// # Ok::<(), exsel_shm::Crash>(())
/// ```
#[derive(Clone, Debug)]
pub struct Snapshot {
    regs: RegRange,
    arena: Arc<SnapArena>,
}

/// The sequence number of a raw snapshot-register word — the
/// *generation tag* of the component. `Null` (never written) is
/// generation 0; each update strictly increases it (SWMR discipline), so
/// equal tags mean the very same record.
fn seq_of(word: &Word) -> u64 {
    match word {
        Word::Null => 0,
        Word::Snap(rec) => rec.seq,
        other => panic!("snapshot register holds non-snapshot word {other:?}"),
    }
}

impl Snapshot {
    /// Reserves registers for an `n`-component snapshot object.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(alloc: &mut RegAlloc, n: usize) -> Self {
        assert!(n > 0, "snapshot object needs at least one component");
        Snapshot {
            regs: alloc.reserve(n),
            arena: Arc::new(SnapArena::new(n)),
        }
    }

    /// Toggles record/view recycling (on by default). With recycling
    /// off, every update installs a freshly allocated [`SnapRecord`] and
    /// every direct scan collects a fresh view — the pre-arena baseline,
    /// kept as the oracle for differential tests: both modes perform
    /// identical operation sequences and return value-identical views.
    /// The flag lives on the shared arena, so it also governs clones of
    /// this object and operations already begun.
    #[must_use]
    pub fn recycling(self, on: bool) -> Self {
        self.arena.set_recycling(on);
        self
    }

    /// The object's record/view recycling arena (telemetry and capacity
    /// inspection).
    #[must_use]
    pub fn arena(&self) -> &SnapArena {
        &self.arena
    }

    /// Number of components.
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.regs.len()
    }

    /// Registers used by this object (for register accounting).
    #[must_use]
    pub fn registers(&self) -> RegRange {
        self.regs
    }

    /// Starts a poll-based scan.
    #[must_use]
    pub fn begin_scan(&self) -> ScanOp {
        ScanOp::new(self.regs, Arc::clone(&self.arena))
    }

    /// Starts a poll-based update of `slot` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn begin_update(&self, slot: usize, value: Word) -> UpdateOp {
        assert!(slot < self.num_slots(), "slot {slot} out of range");
        UpdateOp {
            regs: self.regs,
            slot,
            value,
            scan: self.begin_scan(),
            view: None,
            rec: None,
            state: UpdateState::Scanning,
        }
    }

    /// Blocking wait-free scan: returns a linearizable view of all
    /// components.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Crash`] if the process crashes mid-operation.
    pub fn scan(&self, ctx: Ctx<'_>) -> Step<Arc<[Word]>> {
        drive(&mut self.begin_scan(), ctx)
    }

    /// Blocking wait-free update of `slot` to `value`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Crash`] if the process crashes mid-operation.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn update(&self, ctx: Ctx<'_>, slot: usize, value: Word) -> Step<()> {
        drive(&mut self.begin_update(slot, value), ctx)
    }
}

/// In-progress poll-based scan — a [`StepMachine`] performing exactly one
/// shared-memory read per step.
///
/// Steady-state scans are allocation-free end to end: the collect
/// buffers are reused across rounds (and across trials via
/// [`StepMachine::reset`]); each slot's stored record carries its
/// sequence number as a *generation tag* — a re-read whose tag matches
/// is dropped without cloning the record's `Arc`, so quiescent registers
/// cost no refcount traffic at all; and the view a successful direct
/// double-collect returns comes from the object's [`SnapArena`] — a
/// retired buffer refilled in place, or, when no register changed since
/// this scanner's previous direct scan, the generation-tagged cached
/// view itself (no refill, no allocation).
#[derive(Clone, Debug)]
pub struct ScanOp {
    regs: RegRange,
    /// The object's recycling arena (shared; also holds the never-written
    /// generation-0 record, allocated once per *object*).
    arena: Arc<SnapArena>,
    /// Clone of the arena's shared initial record, reinstalled — not
    /// reallocated — on reset.
    initial: Arc<SnapRecord>,
    /// Sequence numbers seen in the previous complete collect.
    prev_seq: Vec<u64>,
    /// Whether at least one complete collect has finished.
    have_prev: bool,
    /// Records of the collect currently in progress; `cur[j].seq` is the
    /// generation tag guarding the `Arc` clone.
    cur: Vec<Arc<SnapRecord>>,
    /// Next slot to read in the current collect.
    idx: usize,
    /// How many times each writer has been observed to move.
    moved: Vec<u8>,
    /// Generation tags of the last direct view this scan returned (all 0
    /// = the initial all-null view, which `last_direct` starts as).
    direct_seq: Vec<u64>,
    /// The last direct view returned: re-returned as-is while no
    /// register's tag moves past `direct_seq`.
    last_direct: Arc<[Word]>,
}

impl ScanOp {
    fn new(regs: RegRange, arena: Arc<SnapArena>) -> Self {
        let n = regs.len();
        let initial = Arc::clone(arena.initial());
        ScanOp {
            regs,
            prev_seq: vec![0; n],
            have_prev: false,
            cur: vec![Arc::clone(&initial); n],
            idx: 0,
            moved: vec![0; n],
            direct_seq: vec![0; n],
            last_direct: Arc::clone(&initial.view),
            initial,
            arena,
        }
    }

    /// The view of a completed direct double-collect: the values of
    /// `cur`, materialized without allocating whenever the arena can
    /// serve the request — the cached previous direct view if no
    /// register changed since it was taken (same generation tags ⇒ the
    /// very same records ⇒ identical values, by the SWMR discipline), or
    /// a retired buffer refilled in place. Falls back to a fresh collect
    /// (arena miss, or recycling disabled) with identical contents.
    fn direct_view(&mut self) -> Arc<[Word]> {
        if self.arena.recycling_enabled() {
            if self
                .cur
                .iter()
                .zip(&self.direct_seq)
                .all(|(rec, &seq)| rec.seq == seq)
            {
                self.arena.note_view_cache_hit();
                return Arc::clone(&self.last_direct);
            }
            let view = match self.arena.take_view() {
                Some(mut view) => {
                    let buf = Arc::get_mut(&mut view).expect("taken view is uniquely owned");
                    for (dst, rec) in buf.iter_mut().zip(&self.cur) {
                        dst.clone_from(&rec.value);
                    }
                    self.arena.put_view(&view, false);
                    view
                }
                None => {
                    let view: Arc<[Word]> = self.cur.iter().map(|r| r.value.clone()).collect();
                    self.arena.put_view(&view, true);
                    view
                }
            };
            for (seq, rec) in self.direct_seq.iter_mut().zip(&self.cur) {
                *seq = rec.seq;
            }
            self.last_direct = Arc::clone(&view);
            view
        } else {
            let view: Arc<[Word]> = self.cur.iter().map(|r| r.value.clone()).collect();
            self.arena.put_view(&view, true);
            view
        }
    }

    fn n(&self) -> usize {
        self.regs.len()
    }

    /// Restarts the scan from its first collect **within the same
    /// trial**, allocation-free: the collect buffers are reused as-is,
    /// and the generation-tag cache (`cur`) is kept — writer sequence
    /// numbers only grow within a trial, so retained tags stay valid and
    /// quiescent registers still skip their `Arc` clones. This is the
    /// in-place counterpart of [`Snapshot::begin_scan`] for machines
    /// that scan many times per trial (the unbounded-naming acquire
    /// loop). Between trials use [`StepMachine::reset`] instead, which
    /// must drop the cache because writers' sequence numbers restart.
    pub fn restart(&mut self) {
        self.have_prev = false;
        self.idx = 0;
        self.moved.fill(0);
    }

    /// Performs one shared-memory read; returns the view when the scan
    /// completes. Equivalent to [`StepMachine::poll`] with an object-identity
    /// check against `snap`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Crash`] if the process crashes.
    ///
    /// # Panics
    ///
    /// Panics if `snap` is not the object this operation was started on or
    /// if called again after `Ready`.
    pub fn step(&mut self, snap: &Snapshot, ctx: Ctx<'_>) -> Step<Poll<Arc<[Word]>>> {
        assert_eq!(snap.regs, self.regs, "scan driven on a different object");
        self.poll(ctx)
    }
}

impl StepMachine for ScanOp {
    type Output = Arc<[Word]>;

    fn op(&self) -> ShmOp {
        ShmOp::Read(self.regs.get(self.idx))
    }

    fn peek(&self) -> (OpKind, RegId) {
        (OpKind::Read, self.regs.get(self.idx))
    }

    fn advance(&mut self, input: &Word) -> Poll<Arc<[Word]>> {
        let n = self.n();
        // Generation-tagged read: clone the record's Arc only when the
        // register actually changed since we last stored this slot.
        if seq_of(input) != self.cur[self.idx].seq {
            self.cur[self.idx] = match input {
                Word::Null => Arc::clone(&self.initial),
                Word::Snap(rec) => Arc::clone(rec),
                other => panic!("snapshot register holds non-snapshot word {other:?}"),
            };
        }
        self.idx += 1;
        if self.idx < n {
            return Poll::Pending;
        }

        // A collect just completed.
        if self.have_prev {
            if self
                .cur
                .iter()
                .zip(&self.prev_seq)
                .all(|(rec, &prev)| rec.seq == prev)
            {
                // Two identical consecutive collects: direct scan.
                return Poll::Ready(self.direct_view());
            }
            for j in 0..n {
                if self.cur[j].seq != self.prev_seq[j] {
                    self.moved[j] = self.moved[j].saturating_add(1);
                    if self.moved[j] >= 2 {
                        // Writer j completed an entire update inside our
                        // interval: borrow its embedded view.
                        return Poll::Ready(Arc::clone(&self.cur[j].view));
                    }
                }
            }
        }
        for (prev, rec) in self.prev_seq.iter_mut().zip(&self.cur) {
            *prev = rec.seq;
        }
        self.have_prev = true;
        self.idx = 0;
        Poll::Pending
    }

    fn reset(&mut self, _pid: Pid) {
        // Stale records must go: a fresh trial restarts every writer's
        // sequence numbers, so a leftover tag could falsely match. The
        // direct-view cache resets to the initial all-null view for the
        // same reason (all-zero tags describe it exactly), which also
        // keeps the previous trial's values from ever escaping a reused
        // machine.
        for (slot, prev) in self.cur.iter_mut().zip(&mut self.prev_seq) {
            *slot = Arc::clone(&self.initial);
            *prev = 0;
        }
        self.have_prev = false;
        self.idx = 0;
        self.moved.fill(0);
        self.direct_seq.fill(0);
        self.last_direct = Arc::clone(&self.initial.view);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum UpdateState {
    Scanning,
    ReadOwn,
    Write,
    Done,
}

/// In-progress poll-based update — a [`StepMachine`] performing exactly
/// one shared-memory operation per step. The embedded [`ScanOp`] is a
/// permanent field (not a state payload) so [`StepMachine::reset`]
/// re-arms the update without reallocating the collect buffers; the
/// installed [`SnapRecord`] itself comes from the object's
/// [`SnapArena`] — a displaced record, reclaimed once every reader has
/// let go of it, mutated in place under `Arc` uniqueness — so at steady
/// state even the record install touches no allocator.
#[derive(Clone, Debug)]
pub struct UpdateOp {
    regs: RegRange,
    slot: usize,
    value: Word,
    scan: ScanOp,
    /// The view captured when the embedded scan completed.
    view: Option<Arc<[Word]>>,
    /// The record to install, built after the own-register read.
    rec: Option<Arc<SnapRecord>>,
    state: UpdateState,
}

impl UpdateOp {
    /// Re-arms this operation in place as a fresh update of `slot` to
    /// `value` **within the same trial** — the allocation-free
    /// counterpart of [`Snapshot::begin_update`] for machines that
    /// update many times per trial. The embedded scan keeps its collect
    /// buffers and generation-tag caches (see [`ScanOp::restart`]), and
    /// the installed record is reclaimed from the object's [`SnapArena`]
    /// whenever a displaced one has become uniquely owned — at steady
    /// state a re-armed update allocates nothing at all. Dropping the
    /// previous record handle here never frees it: the arena keeps
    /// every installed record reclaimable.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn rearm(&mut self, slot: usize, value: Word) {
        assert!(slot < self.regs.len(), "slot {slot} out of range");
        self.slot = slot;
        self.value = value;
        self.scan.restart();
        self.view = None;
        self.rec = None;
        self.state = UpdateState::Scanning;
    }

    /// Performs one shared-memory operation; returns `Ready` when the
    /// update has been installed. Equivalent to [`StepMachine::poll`] with
    /// an object-identity check against `snap`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Crash`] if the process crashes.
    ///
    /// # Panics
    ///
    /// Panics if `snap` is not the object this operation was started on or
    /// if called again after `Ready`.
    pub fn step(&mut self, snap: &Snapshot, ctx: Ctx<'_>) -> Step<Poll<()>> {
        assert_eq!(snap.regs, self.regs, "update driven on a different object");
        self.poll(ctx)
    }
}

impl StepMachine for UpdateOp {
    type Output = ();

    fn op(&self) -> ShmOp {
        match self.state {
            UpdateState::Scanning => self.scan.op(),
            UpdateState::ReadOwn => ShmOp::Read(self.regs.get(self.slot)),
            UpdateState::Write => ShmOp::Write(
                self.regs.get(self.slot),
                Word::Snap(Arc::clone(self.rec.as_ref().expect("record built"))),
            ),
            UpdateState::Done => panic!("update driven after completion"),
        }
    }

    fn peek(&self) -> (OpKind, RegId) {
        // The pending write is inspected by schedulers on every decision;
        // describing it without materializing the word skips the record's
        // Arc clone in `op()`.
        match self.state {
            UpdateState::Scanning => self.scan.peek(),
            UpdateState::ReadOwn => (OpKind::Read, self.regs.get(self.slot)),
            UpdateState::Write => (OpKind::Write, self.regs.get(self.slot)),
            UpdateState::Done => panic!("update driven after completion"),
        }
    }

    fn advance(&mut self, input: &Word) -> Poll<()> {
        match self.state {
            UpdateState::Scanning => {
                if let Poll::Ready(view) = self.scan.advance(input) {
                    self.view = Some(view);
                    self.state = UpdateState::ReadOwn;
                }
                Poll::Pending
            }
            UpdateState::ReadOwn => {
                // One read of our own register to learn our sequence number
                // (each slot is single-writer, so no one else bumps it).
                let seq = seq_of(input) + 1;
                let view = self.view.take().expect("scan completed");
                let arena = &self.scan.arena;
                let (rec, fresh) = match arena.take_record() {
                    Some(mut rec) => {
                        // Uniquely owned: mutating in place is invisible
                        // to every reader by construction. Replacing the
                        // record's old view drops one ref; the arena
                        // keeps the buffer for a future direct scan.
                        let slot = Arc::get_mut(&mut rec).expect("taken record is uniquely owned");
                        slot.seq = seq;
                        slot.value.clone_from(&self.value);
                        slot.view = view;
                        (rec, false)
                    }
                    None => (
                        Arc::new(SnapRecord {
                            seq,
                            value: self.value.clone(),
                            view,
                        }),
                        true,
                    ),
                };
                arena.put_record(&rec, fresh);
                self.rec = Some(rec);
                self.state = UpdateState::Write;
                Poll::Pending
            }
            UpdateState::Write => {
                self.state = UpdateState::Done;
                Poll::Ready(())
            }
            UpdateState::Done => panic!("update driven after completion"),
        }
    }

    fn reset(&mut self, pid: Pid) {
        self.scan.reset(pid);
        self.view = None;
        self.rec = None;
        self.state = UpdateState::Scanning;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pid, ThreadedShm};

    fn setup(n_slots: usize, n_procs: usize) -> (Snapshot, ThreadedShm) {
        let mut alloc = RegAlloc::new();
        let snap = Snapshot::new(&mut alloc, n_slots);
        let mem = ThreadedShm::new(alloc.total(), n_procs);
        (snap, mem)
    }

    #[test]
    fn empty_scan_is_all_null() {
        let (snap, mem) = setup(3, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let view = snap.scan(ctx).unwrap();
        assert_eq!(view.len(), 3);
        assert!(view.iter().all(Word::is_null));
    }

    #[test]
    fn update_then_scan_sees_value() {
        let (snap, mem) = setup(2, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        snap.update(ctx, 1, Word::Int(9)).unwrap();
        let view = snap.scan(ctx).unwrap();
        assert_eq!(view[0], Word::Null);
        assert_eq!(view[1], Word::Int(9));
    }

    #[test]
    fn sequence_numbers_increase() {
        let (snap, mem) = setup(1, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        for i in 0..5 {
            snap.update(ctx, 0, Word::Int(i)).unwrap();
        }
        let rec = ctx.read(snap.registers().get(0)).unwrap();
        assert_eq!(rec.as_snap().unwrap().seq, 5);
    }

    #[test]
    fn scans_are_comparable_under_concurrency() {
        // The defining property of an atomic snapshot: all returned views
        // are totally ordered componentwise (each component's values are
        // monotone per writer).
        const PROCS: usize = 4;
        const OPS: u64 = 60;
        let (snap, mem) = setup(PROCS, PROCS);
        let views: Vec<Vec<Vec<u64>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..PROCS)
                .map(|p| {
                    let snap = &snap;
                    let mem = &mem;
                    s.spawn(move || {
                        let ctx = Ctx::new(mem, Pid(p));
                        let mut out = Vec::new();
                        for i in 1..=OPS {
                            snap.update(ctx, p, Word::Int(i)).unwrap();
                            let view = snap.scan(ctx).unwrap();
                            out.push(
                                view.iter()
                                    .map(|w| w.as_int().unwrap_or(0))
                                    .collect::<Vec<u64>>(),
                            );
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<Vec<u64>> = views.into_iter().flatten().collect();
        all.sort();
        for pair in all.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            assert!(
                a.iter().zip(b).all(|(x, y)| x <= y),
                "views not comparable: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn scan_includes_own_completed_update() {
        let (snap, mem) = setup(2, 2);
        std::thread::scope(|s| {
            for p in 0..2 {
                let snap = &snap;
                let mem = &mem;
                s.spawn(move || {
                    let ctx = Ctx::new(mem, Pid(p));
                    for i in 1..=40u64 {
                        snap.update(ctx, p, Word::Int(i)).unwrap();
                        let view = snap.scan(ctx).unwrap();
                        let mine = view[p].as_int().unwrap();
                        assert!(mine >= i, "scan missed own update: {mine} < {i}");
                    }
                });
            }
        });
    }

    #[test]
    fn poll_scan_one_op_per_step() {
        let (snap, mem) = setup(3, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut op = snap.begin_scan();
        let mut steps = 0;
        loop {
            let before = ctx.steps();
            let poll = op.step(&snap, ctx).unwrap();
            assert_eq!(ctx.steps(), before + 1, "exactly one shm op per step call");
            steps += 1;
            if poll.ready().is_some() {
                break;
            }
        }
        // Quiescent scan: exactly two collects of 3 reads each.
        assert_eq!(steps, 6);
    }

    #[test]
    fn poll_update_one_op_per_step() {
        let (snap, mem) = setup(2, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut op = snap.begin_update(0, Word::Int(3));
        loop {
            let before = ctx.steps();
            let poll = op.step(&snap, ctx).unwrap();
            assert_eq!(ctx.steps(), before + 1);
            if poll.ready().is_some() {
                break;
            }
        }
        let view = snap.scan(ctx).unwrap();
        assert_eq!(view[0], Word::Int(3));
    }

    #[test]
    fn ops_describe_reads_then_the_final_write() {
        // The step-machine face: a quiescent update is 2 collect reads +
        // 1 own-read + 1 write, every one announced by `op()` beforehand.
        let (snap, mem) = setup(1, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut op = snap.begin_update(0, Word::Int(8));
        let mut kinds = Vec::new();
        loop {
            kinds.push(op.op().kind());
            if op.poll(ctx).unwrap().ready().is_some() {
                break;
            }
        }
        use crate::OpKind::{Read, Write};
        assert_eq!(kinds, vec![Read, Read, Read, Write]);
    }

    #[test]
    fn restarted_scan_performs_a_fresh_scans_op_sequence() {
        let (snap, mem) = setup(3, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut op = snap.begin_scan();
        assert_eq!(drive(&mut op, ctx).unwrap().len(), 3);
        let steps_fresh = ctx.steps();
        op.restart();
        // Same quiescent memory ⇒ same 2-collect scan, same view.
        let view = drive(&mut op, ctx).unwrap();
        assert_eq!(ctx.steps() - steps_fresh, steps_fresh);
        assert!(view.iter().all(Word::is_null));
    }

    #[test]
    fn rearmed_update_matches_fresh_update_op_sequence() {
        let (snap, mem) = setup(2, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut fresh = snap.begin_update(0, Word::Int(1));
        drive(&mut fresh, ctx).unwrap();
        let first = ctx.steps();
        // Re-arm the spent op for slot 1 and drive it like a new update.
        fresh.rearm(1, Word::Int(2));
        drive(&mut fresh, ctx).unwrap();
        assert_eq!(ctx.steps(), 2 * first);
        let view = snap.scan(ctx).unwrap();
        assert_eq!(&view[..], &[Word::Int(1), Word::Int(2)]);
    }

    #[test]
    #[should_panic(expected = "slot 7 out of range")]
    fn rearm_slot_out_of_range() {
        let (snap, _mem) = setup(2, 1);
        let mut op = snap.begin_update(0, Word::Null);
        op.rearm(7, Word::Null);
    }

    #[test]
    #[should_panic(expected = "slot 5 out of range")]
    fn update_slot_out_of_range() {
        let (snap, _mem) = setup(2, 1);
        let _ = snap.begin_update(5, Word::Null);
    }

    #[test]
    #[should_panic(expected = "different object")]
    fn step_checks_object_identity() {
        let mut alloc = RegAlloc::new();
        let a = Snapshot::new(&mut alloc, 2);
        let b = Snapshot::new(&mut alloc, 2);
        let mem = ThreadedShm::new(alloc.total(), 1);
        let mut op = a.begin_scan();
        let _ = op.step(&b, Ctx::new(&mem, Pid(0)));
    }

    #[test]
    fn rearmed_updates_recycle_records_and_views() {
        let (snap, mem) = setup(2, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        let mut op = snap.begin_update(0, Word::Int(1));
        drive(&mut op, ctx).unwrap();
        // Warm up: a few re-armed updates retire displaced records into
        // the arena and let the scanner caches move past them.
        for i in 2..6u64 {
            op.rearm(0, Word::Int(i));
            drive(&mut op, ctx).unwrap();
        }
        let before = snap.arena().stats();
        assert!(before.records_fresh > 0, "fresh installs counted");
        for i in 6..12u64 {
            op.rearm(0, Word::Int(i));
            drive(&mut op, ctx).unwrap();
        }
        let after = snap.arena().stats().since(&before);
        assert_eq!(
            after.fresh_allocations(),
            0,
            "steady-state re-armed updates must allocate nothing: {after:?}"
        );
        assert!(after.records_recycled >= 6);
        let view = snap.scan(ctx).unwrap();
        assert_eq!(&view[..], &[Word::Int(11), Word::Null]);
    }

    #[test]
    fn unchanged_registers_serve_the_cached_direct_view() {
        let (snap, mem) = setup(3, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        snap.update(ctx, 1, Word::Int(4)).unwrap();
        let mut op = snap.begin_scan();
        let first = drive(&mut op, ctx).unwrap();
        let hits = snap.arena().stats().view_cache_hits;
        op.restart();
        let second = drive(&mut op, ctx).unwrap();
        // No register moved: the very same view comes back, no refill.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(snap.arena().stats().view_cache_hits, hits + 1);
        // A write invalidates the cache; the next direct view differs.
        snap.update(ctx, 2, Word::Int(9)).unwrap();
        op.restart();
        let third = drive(&mut op, ctx).unwrap();
        assert!(!Arc::ptr_eq(&second, &third));
        assert_eq!(&third[..], &[Word::Null, Word::Int(4), Word::Int(9)]);
    }

    #[test]
    fn recycling_off_is_the_frozen_baseline() {
        let (snap, mem) = setup(2, 1);
        let snap = snap.recycling(false);
        assert!(!snap.arena().recycling_enabled());
        let ctx = Ctx::new(&mem, Pid(0));
        let mut op = snap.begin_update(0, Word::Int(1));
        drive(&mut op, ctx).unwrap();
        for i in 2..6u64 {
            op.rearm(0, Word::Int(i));
            drive(&mut op, ctx).unwrap();
        }
        let stats = snap.arena().stats();
        assert_eq!(stats.records_recycled + stats.views_recycled, 0);
        assert_eq!(stats.records_fresh, 5, "one fresh record per update");
        assert_eq!(snap.arena().cached_records(), 0, "baseline tracks nothing");
        // Both modes return the same values.
        let view = snap.scan(ctx).unwrap();
        assert_eq!(&view[..], &[Word::Int(5), Word::Null]);
    }

    #[test]
    fn recycled_views_are_value_identical_to_fresh_ones() {
        // Drive the same update/scan sequence against a recycling and a
        // non-recycling object over identical layouts: every returned
        // view must match by value.
        let run = |recycle: bool| -> Vec<Vec<Word>> {
            let mut alloc = RegAlloc::new();
            let snap = Snapshot::new(&mut alloc, 2).recycling(recycle);
            let mem = ThreadedShm::new(alloc.total(), 2);
            let ctx = Ctx::new(&mem, Pid(0));
            let mut views = Vec::new();
            let mut update = snap.begin_update(0, Word::Int(1));
            drive(&mut update, ctx).unwrap();
            let mut scan = snap.begin_scan();
            for i in 0..8u64 {
                update.rearm((i % 2) as usize, Word::Int(10 + i));
                drive(&mut update, ctx).unwrap();
                scan.restart();
                views.push(drive(&mut scan, ctx).unwrap().to_vec());
            }
            views
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn reset_scan_does_not_leak_the_previous_trials_view() {
        // Pool reuse: after reset(pid) the cached direct view must be
        // the initial all-null view again, not the old trial's values —
        // the registers of a new trial restart at Null with tag 0.
        let (snap, mem) = setup(2, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        snap.update(ctx, 0, Word::Int(7)).unwrap();
        let mut op = snap.begin_scan();
        assert_eq!(drive(&mut op, ctx).unwrap()[0], Word::Int(7));
        op.reset(Pid(0));
        // Fresh "trial" memory: all registers Null again.
        let mem2 = ThreadedShm::new(snap.registers().len(), 1);
        let ctx2 = Ctx::new(&mem2, Pid(0));
        let view = drive(&mut op, ctx2).unwrap();
        assert!(view.iter().all(Word::is_null), "leaked {view:?}");
    }

    #[test]
    fn crash_mid_scan_propagates() {
        let (snap, mem) = setup(2, 1);
        let ctx = Ctx::new(&mem, Pid(0));
        mem.crash(Pid(0));
        assert!(snap.scan(ctx).is_err());
        assert!(snap.update(ctx, 0, Word::Int(1)).is_err());
    }
}
