//! Differential property test of the snapshot recycling arena: pooled
//! scans and updates driven over a recycling object must produce views
//! **bit-identical** to the never-recycling baseline
//! (`Snapshot::recycling(false)`) under arbitrary interleavings, with
//! crashes, and across trial boundaries that reuse the same machines via
//! `StepMachine::reset` (the pooling contract).
//!
//! The two flavors are driven by the *same* generated schedule over
//! identical register layouts, so any divergence — a recycled buffer
//! leaking a stale word, a cache returning an outdated view, a reset
//! failing to drop the previous trial's state — shows up as a value
//! mismatch.

use std::sync::Arc;

use exsel_shm::snapshot::{Poll, ScanOp, UpdateOp};
use exsel_shm::{Ctx, Pid, RegAlloc, Snapshot, StepMachine, ThreadedShm, Word};
use proptest::prelude::*;

/// One simulated process alternating update → scan forever, pooled
/// across trials: the update and scan ops are built once and re-armed /
/// reset in place.
struct Proc {
    update: UpdateOp,
    scan: ScanOp,
    scanning: bool,
    round: u64,
    crashed: bool,
}

/// Runs `trials` trials of the same `schedule` against one persistent
/// `Snapshot` (fresh memory per trial, machines reused via `reset`),
/// returning every completed scan view plus the final register bank of
/// each trial — the full observable surface.
fn run_flavor(
    recycling: bool,
    n: usize,
    schedule: &[usize],
    crash_at: Option<(usize, usize)>,
    trials: usize,
) -> Vec<(Vec<Vec<Word>>, Vec<Word>)> {
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, n).recycling(recycling);
    let regs = alloc.total();
    let mut procs: Vec<Proc> = (0..n)
        .map(|p| Proc {
            update: snap.begin_update(p, Word::Int(1)),
            scan: snap.begin_scan(),
            scanning: false,
            round: 0,
            crashed: false,
        })
        .collect();

    let mut out = Vec::with_capacity(trials);
    for trial in 0..trials {
        // Trial boundary: fresh registers, machines reset in place —
        // exactly what `MachinePool::begin_trial` + `StepEngine::reset`
        // do on the engine.
        let mem = ThreadedShm::new(regs, n);
        for (p, proc) in procs.iter_mut().enumerate() {
            proc.update.reset(Pid(p));
            proc.scan.reset(Pid(p));
            proc.update.rearm(p, Word::Int(value_of(trial, 0, p)));
            proc.scanning = false;
            proc.round = 0;
            proc.crashed = false;
        }
        let mut views: Vec<Vec<Word>> = Vec::new();
        for (step, &grant) in schedule.iter().enumerate() {
            let p = grant % n;
            if procs[p].crashed {
                continue;
            }
            if crash_at == Some((step, p)) {
                mem.crash(Pid(p));
                procs[p].crashed = true;
                continue;
            }
            let ctx = Ctx::new(&mem, Pid(p));
            let proc = &mut procs[p];
            if proc.scanning {
                if let Poll::Ready(view) = proc.scan.step(&snap, ctx).unwrap() {
                    views.push(view.to_vec());
                    proc.scanning = false;
                    proc.round += 1;
                    proc.update
                        .rearm(p, Word::Int(value_of(trial, proc.round, p)));
                }
            } else if let Poll::Ready(()) = proc.update.step(&snap, ctx).unwrap() {
                proc.scanning = true;
                proc.scan.restart();
            }
        }
        // Final register contents, read by a surviving process (at most
        // one crash per trial, so with n ≥ 2 one always exists).
        let reader = (0..n).find(|&p| !procs[p].crashed).expect("survivor");
        let ctx = Ctx::new(&mem, Pid(reader));
        let bank: Vec<Word> = (0..regs)
            .map(|r| ctx.read(exsel_shm::RegId(r)).unwrap())
            .collect();
        out.push((views, bank));
    }

    if recycling {
        let stats = snap.arena().stats();
        assert!(
            stats.recycled() > 0 || stats.fresh_allocations() <= (n * trials) as u64,
            "arena never engaged: {stats:?}"
        );
    }
    out
}

/// Deterministic distinct update values, so a leaked buffer from a
/// previous trial or round is guaranteed to hold different words.
fn value_of(trial: usize, round: u64, pid: usize) -> u64 {
    1 + (trial as u64) * 10_000 + round * 100 + pid as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleaved pooled scans/updates with recycling on are
    /// observation-identical to the never-recycling baseline: same
    /// views (bit for bit), same final register banks, across crashes
    /// and trial reuse.
    #[test]
    fn recycling_is_invisible_to_every_interleaving(
        n in 2usize..5,
        schedule in prop::collection::vec(0usize..8, 24..160),
        crash_step in 0usize..160,
        crash_pid in 0usize..8,
    ) {
        let crash_at = Some((crash_step, crash_pid % n));
        let recycled = run_flavor(true, n, &schedule, crash_at, 3);
        let baseline = run_flavor(false, n, &schedule, crash_at, 3);
        prop_assert_eq!(recycled.len(), baseline.len());
        for (trial, (r, b)) in recycled.iter().zip(&baseline).enumerate() {
            prop_assert_eq!(&r.0, &b.0, "views diverged in trial {}", trial);
            prop_assert_eq!(&r.1, &b.1, "register banks diverged in trial {}", trial);
        }
    }

    /// Crash-free runs agree too (the schedule space without the crash
    /// point, which also exercises longer same-trial re-arm chains).
    #[test]
    fn recycling_is_invisible_without_crashes(
        n in 2usize..5,
        schedule in prop::collection::vec(0usize..8, 24..200),
    ) {
        let recycled = run_flavor(true, n, &schedule, None, 2);
        let baseline = run_flavor(false, n, &schedule, None, 2);
        prop_assert_eq!(recycled, baseline);
    }
}

/// A recycled view returned to a caller is immutable from that moment
/// on: later updates and scans must never overwrite a buffer the caller
/// still holds (the `Arc`-uniqueness reclaim rule).
#[test]
fn returned_views_are_frozen_forever() {
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, 3);
    let mem = ThreadedShm::new(alloc.total(), 1);
    let ctx = Ctx::new(&mem, Pid(0));
    let mut update = snap.begin_update(0, Word::Int(1));
    exsel_shm::drive(&mut update, ctx).unwrap();
    let mut scan = snap.begin_scan();
    let held = exsel_shm::drive(&mut scan, ctx).unwrap();
    let frozen: Vec<Word> = held.to_vec();
    // Hammer the object: many recycled updates and scans.
    for i in 2..40u64 {
        update.rearm((i % 3) as usize, Word::Int(i));
        exsel_shm::drive(&mut update, ctx).unwrap();
        scan.restart();
        let _ = exsel_shm::drive(&mut scan, ctx).unwrap();
    }
    assert_eq!(
        &held[..],
        &frozen[..],
        "a held view was mutated by later recycling"
    );
    assert!(Arc::strong_count(&held) >= 1);
}
