//! Property tests of the register-word type and allocator arithmetic.

use exsel_shm::{RegAlloc, SnapRecord, Word};
use proptest::prelude::*;
use std::sync::Arc;

fn word_strategy() -> impl Strategy<Value = Word> {
    prop_oneof![
        Just(Word::Null),
        any::<u64>().prop_map(Word::Int),
        (any::<u64>(), any::<u64>()).prop_map(|(a, b)| Word::Pair(a, b)),
        (any::<u64>(), any::<u64>()).prop_map(|(seq, v)| {
            Word::Snap(Arc::new(SnapRecord {
                seq,
                value: Word::Int(v),
                view: vec![Word::Null].into(),
            }))
        }),
    ]
}

proptest! {
    /// Accessors are mutually exclusive and total: exactly one of the
    /// shape predicates matches any word.
    #[test]
    fn accessors_partition(w in word_strategy()) {
        let shapes = [
            w.is_null(),
            w.as_int().is_some(),
            w.as_pair().is_some(),
            w.as_snap().is_some(),
        ];
        prop_assert_eq!(shapes.iter().filter(|&&s| s).count(), 1);
    }

    /// Round-trips through From are lossless.
    #[test]
    fn from_roundtrips(v in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(Word::from(v).as_int(), Some(v));
        prop_assert_eq!(Word::from((a, b)).as_pair(), Some((a, b)));
        prop_assert_eq!(Word::from(Some(v)).as_int(), Some(v));
        prop_assert!(Word::from(None::<u64>).is_null());
    }

    /// Clone/eq are structural.
    #[test]
    fn clone_eq(w in word_strategy()) {
        prop_assert_eq!(w.clone(), w);
    }

    /// Allocator: consecutive reservations tile the index space exactly.
    #[test]
    fn alloc_tiles_exactly(sizes in prop::collection::vec(0usize..50, 1..20)) {
        let mut alloc = RegAlloc::new();
        let ranges: Vec<_> = sizes.iter().map(|&s| alloc.reserve(s)).collect();
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(alloc.total(), total);
        let mut seen = vec![false; total];
        for r in &ranges {
            for id in r.iter() {
                prop_assert!(!seen[id.0], "register allocated twice");
                seen[id.0] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "gap in allocation");
    }

    /// split_at preserves content and boundaries.
    #[test]
    fn split_preserves(len in 0usize..40, at_frac in 0.0f64..=1.0) {
        let mut alloc = RegAlloc::new();
        alloc.reserve(3); // offset so starts are nonzero
        let r = alloc.reserve(len);
        let at = (len as f64 * at_frac) as usize;
        let (a, b) = r.split_at(at);
        let joined: Vec<_> = a.iter().chain(b.iter()).collect();
        let original: Vec<_> = r.iter().collect();
        prop_assert_eq!(joined, original);
    }
}
