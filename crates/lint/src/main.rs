//! `exsel-lint`: a dependency-free token-level scanner enforcing the
//! repo's engineering contracts, run as a CI step over the workspace.
//!
//! The rules are deliberately few and mechanical — each one guards an
//! invariant the test suite cannot express as a runtime assertion:
//!
//! * **R1 `pool-contract`** — every production `impl StepMachine for`
//!   block must override `fn reset` *and* `fn peek`. The machine pool
//!   resets machines in place every trial, and the engine's grant loop
//!   peeks every pending operation per scheduling point; a machine
//!   inheriting the defaults either panics mid-pool (`reset`) or
//!   silently materializes full `ShmOp`s per inspection (`peek`).
//! * **R2 `hot-path-alloc`** — the step engine's grant loops and the
//!   service control plane (`engine.rs`, `service/mod.rs`,
//!   `service/mega.rs`) must not call `Arc::new`, `.to_vec()` or
//!   `.clone()`: the zero-alloc steady state (tests/alloc_free.rs)
//!   holds because those files stay churn-free by construction.
//! * **R3 `unsafe-allowlist`** — `unsafe` appears only in explicitly
//!   allowlisted files (the counting-allocator probes, which must
//!   implement `GlobalAlloc`); every library crate already carries
//!   `#![forbid(unsafe_code)]` and this rule keeps new binaries and
//!   integration tests honest too.
//!
//! Scanning is textual but token-aware: comments and string/char
//! literals are blanked before matching (prose about `unsafe` or
//! `.clone()` never trips a rule), and `#[cfg(test)]`-gated items are
//! masked out (test fixtures legitimately break all three rules).
//! Violations print as `path:line: rule: message` and the process exits
//! nonzero if any were found.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories never scanned: vendored shims, build output, VCS state.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git"];

/// R2's hot files: the engine grant loops and the service control
/// plane, workspace-relative.
const HOT_FILES: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/sim/src/service/mod.rs",
    "crates/sim/src/service/mega.rs",
];

/// R2's forbidden calls.
const HOT_PATTERNS: &[&str] = &["Arc::new(", ".to_vec()", ".clone()"];

/// R3's allowlist: the counting-allocator probes (a `GlobalAlloc` impl
/// is `unsafe` by definition).
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/bench/src/bin/bench_gate.rs",
    "crates/bench/src/bin/expt.rs",
    "tests/alloc_free.rs",
];

fn main() -> ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = PathBuf::from(root);
    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let Ok(src) = fs::read_to_string(path) else {
            continue; // unreadable: not this tool's problem
        };
        let rel = relative(path, &root);
        let masked = mask_test_items(&strip_comments_and_strings(&src));
        check_file(&rel, &masked, &mut violations);
    }

    if violations.is_empty() {
        println!("exsel-lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!(
            "exsel-lint: {} violation(s) in {} files",
            violations.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// Recursively gathers `.rs` files under `dir`, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, with forward slashes.
fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs every applicable rule over one masked file.
fn check_file(rel: &str, masked: &str, violations: &mut Vec<String>) {
    let production = (rel.starts_with("crates/") && rel.contains("/src/"))
        || (rel.starts_with("src/") && !rel.contains("/bin/"));
    if production {
        check_pool_contract(rel, masked, violations);
    }
    if HOT_FILES.contains(&rel) {
        check_hot_path(rel, masked, violations);
    }
    if !UNSAFE_ALLOWLIST.contains(&rel) {
        check_unsafe(rel, masked, violations);
    }
}

/// R1: every `impl StepMachine for` block overrides `reset` and `peek`.
fn check_pool_contract(rel: &str, masked: &str, violations: &mut Vec<String>) {
    let mut from = 0;
    while let Some(pos) = masked[from..].find("StepMachine for ") {
        let at = from + pos;
        from = at + "StepMachine for ".len();
        let Some(open) = masked[at..].find('{').map(|o| at + o) else {
            continue;
        };
        let Some(close) = matching_brace(masked, open) else {
            continue;
        };
        let body = &masked[open..close];
        for missing in ["fn reset", "fn peek"] {
            if !body.contains(missing) {
                violations.push(format!(
                    "{rel}:{}: pool-contract: `impl StepMachine` without `{missing}` — pooled machines must reset in place and peek without materializing ShmOps",
                    line_of(masked, at)
                ));
            }
        }
    }
}

/// R2: no allocation/refcount churn in the hot files.
fn check_hot_path(rel: &str, masked: &str, violations: &mut Vec<String>) {
    for pat in HOT_PATTERNS {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(pat) {
            let at = from + pos;
            from = at + pat.len();
            violations.push(format!(
                "{rel}:{}: hot-path-alloc: `{pat}` in a grant-loop file — the steady state must stay zero-alloc",
                line_of(masked, at)
            ));
        }
    }
}

/// R3: the `unsafe` keyword outside the allowlist. Word-boundary
/// matched, so the `forbid(unsafe_code)` attribute never trips it.
fn check_unsafe(rel: &str, masked: &str, violations: &mut Vec<String>) {
    let bytes = masked.as_bytes();
    let mut from = 0;
    while let Some(pos) = masked[from..].find("unsafe") {
        let at = from + pos;
        from = at + "unsafe".len();
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + "unsafe".len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            violations.push(format!(
                "{rel}:{}: unsafe-allowlist: `unsafe` outside the allowlisted allocator probes",
                line_of(masked, at)
            ));
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// 1-based line number of byte offset `at`.
fn line_of(text: &str, at: usize) -> usize {
    text.as_bytes()[..at]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Byte offset just past the brace matching the `{` at `open`, or
/// `None` if unbalanced (a parse the compiler would reject anyway).
fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, b) in text.as_bytes().iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// If `b[i..]` opens a raw (or raw byte) string literal — `r"`, `r#"`,
/// `br"`, … — returns the offset of the opening quote and the hash
/// count.
fn raw_string_open(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return None;
    }
    j += 1;
    let hashes = b[j..].iter().take_while(|&&c| c == b'#').count();
    (j + hashes < b.len() && b[j + hashes] == b'"').then_some((j + hashes, hashes))
}

/// Blanks comments (line, nested block) and string/char literals
/// (plain, raw, byte), preserving every newline so line numbers and
/// brace structure survive. Lifetimes (`'a`) are left intact.
fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let blank = |out: &mut String, s: &[u8]| {
        for &c in s {
            out.push(if c == b'\n' { '\n' } else { ' ' });
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = b[i..]
                    .iter()
                    .position(|&c| c == b'\n')
                    .map_or(b.len(), |p| i + p);
                blank(&mut out, &b[i..end]);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, &b[i..j]);
                i = j;
            }
            b'r' | b'b' if raw_string_open(b, i).is_some() => {
                let (quote, hashes) = raw_string_open(b, i).unwrap();
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let mut j = quote + 1;
                while j < b.len() && !b[j..].starts_with(&closer) {
                    j += 1;
                }
                let end = (j + closer.len()).min(b.len());
                blank(&mut out, &b[i..end]);
                i = end;
            }
            b'"' => {
                let mut j = i + 1;
                while j < b.len() {
                    if b[j] == b'\\' && j + 1 < b.len() {
                        j += 2;
                    } else if b[j] == b'"' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, &b[i..j]);
                i = j;
            }
            b'\'' => {
                // Char literal ('x', '\n') vs lifetime ('a): a literal
                // closes with a quote right after one (escaped) char.
                let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                    true
                } else {
                    i + 2 < b.len() && b[i + 2] == b'\''
                };
                if is_char {
                    let mut j = i + 1;
                    while j < b.len() {
                        if b[j] == b'\\' && j + 1 < b.len() {
                            j += 2;
                        } else if b[j] == b'\'' {
                            j += 1;
                            break;
                        } else {
                            j += 1;
                        }
                    }
                    blank(&mut out, &b[i..j]);
                    i = j;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// Blanks every `#[cfg(test)]`-attributed braced item (test modules and
/// fixtures), newlines preserved. Operates on already-stripped text. An
/// attribute whose item has no body before the next `;` (e.g.
/// `#[cfg(test)] mod tests;`) is left alone — path modules live in
/// their own files, which are scanned (and passed) on their own merits.
fn mask_test_items(stripped: &str) -> String {
    let mut out = stripped.to_string();
    let mut from = 0;
    while let Some(pos) = out[from..].find("#[cfg(test)]") {
        let at = from + pos;
        let after_attr = at + "#[cfg(test)]".len();
        let Some(open) = out[after_attr..].find('{').map(|o| after_attr + o) else {
            break;
        };
        if out[after_attr..open].contains(';') {
            from = after_attr;
            continue;
        }
        let Some(close) = matching_brace(&out, open) else {
            break;
        };
        let masked: String = out[at..close]
            .chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' })
            .collect();
        out.replace_range(at..close, &masked);
        from = close;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_blanks_comments_and_strings_but_keeps_lines() {
        let src =
            "let a = 1; // unsafe here\nlet s = \"unsafe\";\n/* unsafe\nstill */ let b = 2;\n";
        let out = strip_comments_and_strings(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(!out.contains("unsafe"));
        assert!(out.contains("let a = 1;"));
        assert!(out.contains("let b = 2;"));
    }

    #[test]
    fn stripping_handles_raw_strings_chars_and_lifetimes() {
        let src = "let r = r#\"unsafe \"# ; let c = '\\''; let q = 'u'; fn f<'a>(x: &'a u32) {}";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("unsafe"));
        assert!(out.contains("fn f<'a>(x: &'a u32) {}"));
    }

    #[test]
    fn test_items_are_masked() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn x(y: &V) { y.clone(); }\n}\nfn after() {}\n";
        let out = mask_test_items(&strip_comments_and_strings(src));
        assert!(!out.contains("clone"));
        assert!(out.contains("fn prod()"));
        assert!(out.contains("fn after()"));
        assert_eq!(out.lines().count(), src.lines().count());
    }

    #[test]
    fn path_test_modules_do_not_swallow_following_code() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod(v: &V) { v.clone() }\n";
        let out = mask_test_items(&strip_comments_and_strings(src));
        assert!(out.contains("clone"), "{out}");
    }

    #[test]
    fn pool_contract_flags_missing_overrides() {
        let good = "impl StepMachine for A {\n fn op(&self) {}\n fn peek(&self) {}\n fn reset(&mut self) {}\n}";
        let mut v = Vec::new();
        check_pool_contract("crates/x/src/a.rs", good, &mut v);
        assert!(v.is_empty(), "{v:?}");

        let bad = "impl StepMachine for B {\n fn op(&self) {}\n}";
        check_pool_contract("crates/x/src/a.rs", bad, &mut v);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("fn reset"));
        assert!(v[1].contains("fn peek"));
        assert!(v[0].starts_with("crates/x/src/a.rs:1:"));
    }

    #[test]
    fn hot_path_rule_reports_each_site_with_line() {
        let src = "fn f() {\n    let x = v.to_vec();\n    let y = w.clone();\n}";
        let mut v = Vec::new();
        check_hot_path("crates/sim/src/engine.rs", src, &mut v);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|m| m.contains(":2:")));
        assert!(v.iter().any(|m| m.contains(":3:")));
    }

    #[test]
    fn unsafe_rule_has_word_boundaries() {
        let mut v = Vec::new();
        check_unsafe("a.rs", "#![forbid(unsafe_code)]", &mut v);
        assert!(v.is_empty(), "{v:?}");
        check_unsafe("a.rs", "unsafe { x() }", &mut v);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn production_scope_excludes_tests_and_allowlists() {
        let bad = "impl StepMachine for B { fn op(&self) {} }";
        let mut v = Vec::new();
        check_file("tests/fixture.rs", bad, &mut v);
        assert!(v.is_empty(), "{v:?}");
        check_file("crates/core/src/x.rs", bad, &mut v);
        assert_eq!(v.len(), 2);

        v.clear();
        check_file("tests/alloc_free.rs", "unsafe impl G for A {}", &mut v);
        assert!(v.is_empty(), "{v:?}");
        check_file("tests/other.rs", "unsafe impl G for A {}", &mut v);
        assert_eq!(v.len(), 1);
    }
}
