//! Property-based invariants of the expander machinery.

use std::collections::HashSet;

use exsel_expander::{check_unique_neighbor_rate, BipartiteGraph, ExpanderParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The randomized construction always yields distinct, in-range
    /// neighbours of the configured degree, deterministically per seed.
    #[test]
    fn construction_well_formed(
        n_exp in 3u32..12,
        capacity in 1usize..16,
        seed in any::<u64>(),
    ) {
        let n = 1usize << n_exp;
        let p = ExpanderParams::compact();
        let g = BipartiteGraph::random(n, capacity, &p, seed);
        prop_assert_eq!(g.num_inputs(), n);
        prop_assert_eq!(g.degree(), p.degree(n, capacity));
        prop_assert!(g.num_outputs() >= g.degree());
        for v in [0, n / 2, n - 1] {
            let ns = g.neighbors(v);
            let set: HashSet<_> = ns.iter().collect();
            prop_assert_eq!(set.len(), ns.len(), "duplicate neighbour");
            prop_assert!(ns.iter().all(|&w| (w as usize) < g.num_outputs()));
        }
        prop_assert_eq!(&g, &BipartiteGraph::random(n, capacity, &p, seed));
    }

    /// Unique-neighbour matchings are matchings contained in the edge set,
    /// and monotone under subset shrinking is NOT required — but the
    /// matching of a singleton is always perfect.
    #[test]
    fn matching_structure(
        seed in any::<u64>(),
        picks in prop::collection::btree_set(0usize..256, 1..12),
    ) {
        let g = BipartiteGraph::random(256, 12, &ExpanderParams::compact(), seed);
        let subset: Vec<usize> = picks.into_iter().collect();
        let m = g.unique_neighbor_matching(&subset);
        let inputs: HashSet<_> = m.iter().map(|&(v, _)| v).collect();
        let outputs: HashSet<_> = m.iter().map(|&(_, w)| w).collect();
        prop_assert_eq!(inputs.len(), m.len(), "input matched twice");
        prop_assert_eq!(outputs.len(), m.len(), "output matched twice");
        for (v, w) in &m {
            prop_assert!(subset.contains(v));
            prop_assert!(g.neighbors(*v).contains(w), "matching edge not in graph");
            // w must be unique to v within the subset.
            let touchers = subset.iter().filter(|&&u| g.neighbors(u).contains(w)).count();
            prop_assert_eq!(touchers, 1, "matched output touched by {} subset members", touchers);
        }
    }

    /// Singletons always match (their whole neighbourhood is unique).
    #[test]
    fn singleton_always_matched(v in 0usize..128, seed in any::<u64>()) {
        let g = BipartiteGraph::random(128, 4, &ExpanderParams::compact(), seed);
        prop_assert_eq!(g.unique_neighbor_matching(&[v]).len(), 1);
    }

    /// The statistical checker never exceeds 1 and is deterministic.
    #[test]
    fn rate_bounded_and_deterministic(seed in any::<u64>(), trials in 1usize..50) {
        let g = BipartiteGraph::random(512, 8, &ExpanderParams::compact(), 3);
        let r1 = check_unique_neighbor_rate(&g, 8, trials, seed);
        let r2 = check_unique_neighbor_rate(&g, 8, trials, seed);
        prop_assert!((0.0..=1.0).contains(&r1));
        prop_assert_eq!(r1, r2);
    }
}
