//! Expansion verification: exhaustive for small graphs, statistical for
//! large ones.

use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::BipartiteGraph;

/// Exhaustively checks that `g` is an `(L, Δ, ε)`-lossless expander: every
/// input subset `X` with `1 ≤ |X| ≤ capacity` has `|Γ(X)| > (1−ε)·|X|·Δ`.
///
/// Exponential in `capacity`; intended for the small instances in tests
/// (`num_inputs ≤ ~32`, `capacity ≤ ~4`). Large instances should use
/// [`check_unique_neighbor_rate`].
#[must_use]
pub fn is_lossless_expander(g: &BipartiteGraph, capacity: usize, epsilon: f64) -> bool {
    let n = g.num_inputs();
    let mut subset: Vec<usize> = Vec::with_capacity(capacity);
    fn recurse(
        g: &BipartiteGraph,
        start: usize,
        subset: &mut Vec<usize>,
        capacity: usize,
        epsilon: f64,
    ) -> bool {
        if !subset.is_empty() {
            let need = (1.0 - epsilon) * subset.len() as f64 * g.degree() as f64;
            if g.neighborhood(subset).len() as f64 <= need {
                return false;
            }
        }
        if subset.len() == capacity {
            return true;
        }
        for v in start..g.num_inputs() {
            subset.push(v);
            if !recurse(g, v + 1, subset, capacity, epsilon) {
                return false;
            }
            subset.pop();
        }
        true
    }
    recurse(g, 0, &mut subset, capacity.min(n), epsilon)
}

/// Statistically estimates the unique-neighbour quality of `g`: samples
/// `trials` random input subsets of size exactly `min(capacity,
/// num_inputs)` and returns the worst observed ratio
/// `|unique-neighbour matching| / |X|` (Lemma 2's quantity; the Majority
/// analysis needs it above `1 − 2ε = 1/2`).
///
/// # Panics
///
/// Panics if `trials == 0` or the graph has no inputs.
#[must_use]
pub fn check_unique_neighbor_rate(
    g: &BipartiteGraph,
    capacity: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    assert!(trials > 0, "need at least one trial");
    let size = capacity.min(g.num_inputs()).max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut worst = f64::INFINITY;
    for _ in 0..trials {
        let subset: Vec<usize> = sample(&mut rng, g.num_inputs(), size).into_vec();
        let matched = g.unique_neighbor_matching(&subset).len();
        worst = worst.min(matched as f64 / size as f64);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExpanderParams;

    #[test]
    fn disjoint_graph_is_perfect_expander() {
        // Inputs with pairwise-disjoint neighbourhoods expand losslessly
        // for any ε > 0.
        let g = BipartiteGraph::from_fn(6, 12, 2, |v, i| 2 * v + i);
        assert!(is_lossless_expander(&g, 3, 0.01));
    }

    #[test]
    fn complete_overlap_fails_expansion() {
        // All inputs share the same two outputs: Γ(X) = 2 for any X.
        let g = BipartiteGraph::from_fn(6, 2, 2, |_, i| i);
        assert!(!is_lossless_expander(&g, 2, 0.25));
    }

    #[test]
    fn small_random_graph_expands() {
        // With compact constants and tiny capacity, random graphs are
        // overwhelmingly likely to be lossless; check a fixed good seed
        // exhaustively.
        let p = ExpanderParams::compact();
        let g = BipartiteGraph::random(24, 3, &p, 1);
        assert!(
            is_lossless_expander(&g, 3, p.epsilon),
            "seed 1 gave a non-expanding graph; pick another fixed seed"
        );
    }

    #[test]
    fn unique_neighbor_rate_beats_majority_threshold() {
        let p = ExpanderParams::compact();
        for (n, l) in [(256usize, 8usize), (1024, 16), (4096, 32)] {
            let g = BipartiteGraph::random(n, l, &p, 7);
            let worst = check_unique_neighbor_rate(&g, l, 200, 99);
            assert!(
                worst > 0.5,
                "worst unique-neighbour rate {worst} ≤ 1/2 for n={n}, l={l}"
            );
        }
    }

    #[test]
    fn rate_is_one_for_solo_contender() {
        let p = ExpanderParams::compact();
        let g = BipartiteGraph::random(64, 1, &p, 0);
        assert_eq!(check_unique_neighbor_rate(&g, 1, 50, 1), 1.0);
    }

    #[test]
    fn capacity_larger_than_inputs_is_clamped() {
        let g = BipartiteGraph::from_fn(3, 9, 3, |v, i| 3 * v + i);
        assert!(is_lossless_expander(&g, 10, 0.25));
        assert_eq!(check_unique_neighbor_rate(&g, 10, 5, 2), 1.0);
    }
}
