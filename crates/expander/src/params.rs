//! Expander sizing profiles.

/// Sizing constants for the randomized lossless-expander construction.
///
/// For inputs `V` and contender capacity `L`, Lemma 3 uses degree
/// `Δ = 4·lg(|V|/L)` and output width `|W| = 12e⁴·L·lg(|V|/L)`; the
/// resulting graph is an `(L, Δ, 1/4)`-lossless expander with positive
/// probability. The paper's width constant `12e⁴ ≈ 655` exists to make a
/// union bound go through and is still heavy for experiments (ℓ = 8,
/// N = 256 already needs ~26 000 registers per stage), so we also provide
/// a `compact` profile whose expansion we validate empirically (see
/// `DESIGN.md`, substitution notes): exclusiveness and wait-freedom of the
/// renaming algorithms never depend on expansion — only the *progress
/// rate* does — so weaker constants only move constants in measured
/// curves.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpanderParams {
    /// Multiplier on `L·lg(|V|/L)` giving the number of outputs.
    pub width_factor: f64,
    /// Multiplier on `lg(|V|/L)` giving the input degree.
    pub degree_factor: f64,
    /// Lower bound on the degree (keeps tiny instances connected).
    pub min_degree: usize,
    /// Expansion slack ε; unique-neighbour matchings have size
    /// `> (1−2ε)|X|` (Lemma 2). The paper uses ε = 1/4.
    pub epsilon: f64,
}

impl ExpanderParams {
    /// The constants of Lemma 3: `Δ = 4·lg(|V|/L)`,
    /// `|W| = 12e⁴·L·lg(|V|/L)`, ε = 1/4.
    #[must_use]
    pub fn paper() -> Self {
        ExpanderParams {
            width_factor: 12.0 * std::f64::consts::E.powi(4),
            degree_factor: 4.0,
            min_degree: 4,
            epsilon: 0.25,
        }
    }

    /// Laptop-scale constants: `Δ ≈ 2·lg(|V|/L)` (min 4),
    /// `|W| ≈ 16·L·lg(|V|/L)`. The expected fraction of a size-`L` subset
    /// with a unique neighbour is `1 − (L·Δ/|W|)^Δ ≈ 1 − 8^{-Δ}`, far above
    /// the 1/2 the Majority analysis needs; `tests` and experiment T1
    /// validate this empirically.
    #[must_use]
    pub fn compact() -> Self {
        ExpanderParams {
            width_factor: 16.0,
            degree_factor: 2.0,
            min_degree: 4,
            epsilon: 0.25,
        }
    }

    /// Degree for `n_inputs` inputs at capacity `L`.
    #[must_use]
    pub fn degree(&self, n_inputs: usize, capacity: usize) -> usize {
        let ratio = (n_inputs.max(2) as f64 / capacity.max(1) as f64).max(2.0);
        let d = (self.degree_factor * ratio.log2()).ceil() as usize;
        d.max(self.min_degree)
    }

    /// Number of outputs for `n_inputs` inputs at capacity `L`.
    #[must_use]
    pub fn width(&self, n_inputs: usize, capacity: usize) -> usize {
        let l = capacity.max(1) as f64;
        let ratio = (n_inputs.max(2) as f64 / l).max(2.0);
        let w = (self.width_factor * l * ratio.log2()).ceil() as usize;
        // Never fewer outputs than the degree, or adjacency lists could
        // not be distinct.
        w.max(self.degree(n_inputs, capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let p = ExpanderParams::paper();
        // 12e^4 ≈ 655.18
        assert!((p.width_factor - 655.18).abs() < 0.01);
        assert_eq!(p.degree_factor, 4.0);
    }

    #[test]
    fn degree_grows_with_ratio() {
        let p = ExpanderParams::compact();
        let d_small = p.degree(1 << 8, 8);
        let d_large = p.degree(1 << 20, 8);
        assert!(d_large > d_small);
    }

    #[test]
    fn width_scales_linearly_in_capacity() {
        let p = ExpanderParams::compact();
        let w8 = p.width(1 << 16, 8);
        let w16 = p.width(1 << 16, 16);
        assert!(w16 > w8);
        assert!(w16 < 3 * w8);
    }

    #[test]
    fn width_at_least_degree() {
        let p = ExpanderParams::compact();
        for n in [2usize, 4, 16, 1024] {
            for l in [1usize, 2, 8] {
                assert!(p.width(n, l) >= p.degree(n, l));
            }
        }
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let p = ExpanderParams::compact();
        assert!(p.degree(1, 1) >= p.min_degree);
        assert!(p.width(1, 1) >= 1);
        assert!(p.degree(8, 16) >= p.min_degree); // capacity above inputs
    }
}
