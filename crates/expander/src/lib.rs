//! Bipartite lossless expanders for exclusive selection.
//!
//! The renaming algorithms of Chlebus & Kowalski have contending processes
//! walk the adjacency lists of a bipartite graph `G = (V, W, E)` — inputs
//! `V` are possible original names, outputs `W` are candidate new names —
//! competing for each visited output. Progress rests on `G` being an
//! `(L, Δ, ε)`-**lossless expander** (every input subset `X`, `|X| ≤ L`,
//! has more than `(1−ε)|X|Δ` neighbours), which by Lemma 2 guarantees a
//! unique-neighbour matching of more than `(1−2ε)|X|` inputs, and hence
//! that a majority of ≤ `L` contenders win names unopposed.
//!
//! Lemma 3 proves such graphs exist by the probabilistic method; this crate
//! implements the same randomized construction ([`BipartiteGraph::random`])
//! with the paper's constants ([`ExpanderParams::paper`]) or laptop-scale
//! ones ([`ExpanderParams::compact`]), plus an exhaustive verifier for
//! small instances and statistical unique-neighbour checks for large ones.
//!
//! ```
//! use exsel_expander::{BipartiteGraph, ExpanderParams};
//!
//! let g = BipartiteGraph::random(256, 8, &ExpanderParams::compact(), 42);
//! // Every input has `degree` distinct neighbours.
//! assert!(g.neighbors(0).len() == g.degree());
//! // A contender subset of size ≤ 8 has a large unique-neighbour matching.
//! let matched = g.unique_neighbor_matching(&[3, 77, 130, 201]);
//! assert!(matched.len() >= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod params;
mod verify;

pub use graph::BipartiteGraph;
pub use params::ExpanderParams;
pub use verify::{check_unique_neighbor_rate, is_lossless_expander};
