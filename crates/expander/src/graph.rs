//! Bipartite graph representation and randomized construction.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ExpanderParams;

/// A bipartite graph `G = (V, W, E)` with regular input degree, stored as a
/// flat adjacency array. Inputs are `0..num_inputs`, outputs are
/// `0..num_outputs`.
///
/// Construction is deterministic given the seed, so every process in a
/// distributed execution derives the *same* graph from shared code — the
/// graph is part of the algorithm's code, exactly as in the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BipartiteGraph {
    num_inputs: usize,
    num_outputs: usize,
    degree: usize,
    /// `adj[v*degree ..][..degree]` are the neighbours of input `v`.
    adj: Vec<u32>,
}

impl BipartiteGraph {
    /// Builds a graph from an explicit adjacency function.
    ///
    /// # Panics
    ///
    /// Panics if any produced neighbour is out of range, or if
    /// `num_outputs` exceeds `u32::MAX`.
    pub fn from_fn(
        num_inputs: usize,
        num_outputs: usize,
        degree: usize,
        mut neighbors: impl FnMut(usize, usize) -> usize,
    ) -> Self {
        assert!(u32::try_from(num_outputs).is_ok(), "too many outputs");
        let mut adj = Vec::with_capacity(num_inputs * degree);
        for v in 0..num_inputs {
            for i in 0..degree {
                let w = neighbors(v, i);
                assert!(w < num_outputs, "neighbour {w} out of range");
                adj.push(w as u32);
            }
        }
        BipartiteGraph {
            num_inputs,
            num_outputs,
            degree,
            adj,
        }
    }

    /// The randomized construction of Lemma 3: each input independently
    /// picks `Δ` *distinct* uniform neighbours, with `Δ` and `|W|` sized by
    /// `params` for contender capacity `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs == 0`.
    #[must_use]
    pub fn random(num_inputs: usize, capacity: usize, params: &ExpanderParams, seed: u64) -> Self {
        assert!(num_inputs > 0, "graph needs at least one input");
        let degree = params.degree(num_inputs, capacity);
        let num_outputs = params.width(num_inputs, capacity).max(degree);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut adj = Vec::with_capacity(num_inputs * degree);
        let mut chosen = HashSet::with_capacity(degree);
        for _v in 0..num_inputs {
            chosen.clear();
            while chosen.len() < degree {
                let w = rng.gen_range(0..num_outputs) as u32;
                if chosen.insert(w) {
                    adj.push(w);
                }
            }
        }
        BipartiteGraph {
            num_inputs,
            num_outputs,
            degree,
            adj,
        }
    }

    /// Number of inputs `|V|`.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs `|W|`.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Input degree `Δ`.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The neighbours of input `v`, in walk order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_inputs()`.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        assert!(v < self.num_inputs, "input {v} out of range");
        &self.adj[v * self.degree..(v + 1) * self.degree]
    }

    /// The neighbourhood `Γ(X)` of an input subset.
    #[must_use]
    pub fn neighborhood(&self, subset: &[usize]) -> HashSet<u32> {
        subset
            .iter()
            .flat_map(|&v| self.neighbors(v).iter().copied())
            .collect()
    }

    /// The *unique-neighbour matching* of Lemma 2: pairs `(v, w)` where
    /// output `w` is adjacent to exactly one member `v` of `subset`, at
    /// most one pair per input. For an `(L, Δ, ε)`-lossless expander and
    /// `|subset| ≤ L` its size exceeds `(1−2ε)|subset|`.
    #[must_use]
    pub fn unique_neighbor_matching(&self, subset: &[usize]) -> Vec<(usize, u32)> {
        let mut owner: std::collections::HashMap<u32, Option<usize>> =
            std::collections::HashMap::new();
        for &v in subset {
            for &w in self.neighbors(v) {
                owner
                    .entry(w)
                    .and_modify(|o| *o = None) // second toucher: not unique
                    .or_insert(Some(v));
            }
        }
        let mut matched: HashSet<usize> = HashSet::new();
        let mut out = Vec::new();
        let mut pairs: Vec<(u32, usize)> = owner
            .into_iter()
            .filter_map(|(w, o)| o.map(|v| (w, v)))
            .collect();
        pairs.sort_unstable();
        for (w, v) in pairs {
            if matched.insert(v) {
                out.push((v, w));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic_per_seed() {
        let p = ExpanderParams::compact();
        let a = BipartiteGraph::random(128, 8, &p, 5);
        let b = BipartiteGraph::random(128, 8, &p, 5);
        let c = BipartiteGraph::random(128, 8, &p, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn neighbors_are_distinct_and_in_range() {
        let p = ExpanderParams::compact();
        let g = BipartiteGraph::random(64, 4, &p, 1);
        for v in 0..g.num_inputs() {
            let ns = g.neighbors(v);
            assert_eq!(ns.len(), g.degree());
            let set: HashSet<_> = ns.iter().collect();
            assert_eq!(set.len(), ns.len(), "duplicate neighbour at input {v}");
            assert!(ns.iter().all(|&w| (w as usize) < g.num_outputs()));
        }
    }

    #[test]
    fn from_fn_builds_explicit_graph() {
        let g = BipartiteGraph::from_fn(3, 6, 2, |v, i| 2 * v + i);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.neighbors(2), &[4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_fn_rejects_bad_neighbor() {
        let _ = BipartiteGraph::from_fn(1, 2, 1, |_, _| 7);
    }

    #[test]
    fn matching_on_disjoint_graph_is_perfect() {
        // Inputs with disjoint neighbourhoods: everyone matched.
        let g = BipartiteGraph::from_fn(4, 8, 2, |v, i| 2 * v + i);
        let m = g.unique_neighbor_matching(&[0, 1, 2, 3]);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn matching_detects_shared_outputs() {
        // Two inputs with identical neighbourhoods: no unique neighbours.
        let g = BipartiteGraph::from_fn(2, 2, 2, |_, i| i);
        let m = g.unique_neighbor_matching(&[0, 1]);
        assert!(m.is_empty());
        // Alone, input 0 has both outputs unique.
        assert_eq!(g.unique_neighbor_matching(&[0]).len(), 1);
    }

    #[test]
    fn matching_is_a_matching() {
        let p = ExpanderParams::compact();
        let g = BipartiteGraph::random(256, 16, &p, 3);
        let subset: Vec<usize> = (0..16).map(|i| i * 13 % 256).collect();
        let m = g.unique_neighbor_matching(&subset);
        let inputs: HashSet<_> = m.iter().map(|(v, _)| v).collect();
        let outputs: HashSet<_> = m.iter().map(|(_, w)| w).collect();
        assert_eq!(inputs.len(), m.len());
        assert_eq!(outputs.len(), m.len());
        for (v, w) in &m {
            assert!(g.neighbors(*v).contains(w));
        }
    }

    #[test]
    fn neighborhood_size() {
        let g = BipartiteGraph::from_fn(3, 10, 2, |v, i| (3 * v + i) % 10);
        let nb = g.neighborhood(&[0, 1]);
        assert_eq!(nb, HashSet::from([0, 1, 3, 4]));
    }
}
