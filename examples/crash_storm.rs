//! Renaming under an adversarial crash storm, replayed deterministically
//! on the simulator: the scheduler picks random interleavings and kills
//! up to n−1 processes mid-algorithm; survivors must still acquire
//! exclusive names, wait-free.
//!
//! Run with: `cargo run --example crash_storm`

use exclusive_selection::sim::policy::{CrashStorm, RandomPolicy};
use exclusive_selection::{BasicRename, RegAlloc, Rename, RenameConfig, SimBuilder};
use std::collections::BTreeSet;

fn main() {
    let k = 8usize;
    let n_names = 512usize;
    let cfg = RenameConfig::default();

    println!("Basic-Rename(k={k}, N={n_names}) under crash storms, 20 seeds:\n");
    println!(
        "{:>5}  {:>8}  {:>7}  {:>9}  {:>9}",
        "seed", "crashed", "named", "max_steps", "exclusive"
    );

    for seed in 0..20u64 {
        let mut alloc = RegAlloc::new();
        let algo = BasicRename::new(&mut alloc, n_names, k, &cfg);
        let policy = CrashStorm::new(
            Box::new(RandomPolicy::new(seed)),
            seed ^ 0xF00D,
            0.02,
            k - 1,
        );
        let outcome = SimBuilder::new(alloc.total(), Box::new(policy)).run(k, |ctx| {
            let original = (ctx.pid().0 as u64 + 1) * 61;
            algo.rename(ctx, original).map(|o| o.name())
        });

        let names: Vec<u64> = outcome
            .results
            .iter()
            .filter_map(|r| r.as_ref().ok().copied().flatten())
            .collect();
        let set: BTreeSet<u64> = names.iter().copied().collect();
        let exclusive = set.len() == names.len();
        println!(
            "{seed:>5}  {:>8}  {:>7}  {:>9}  {exclusive:>9}",
            outcome.crashed.len(),
            names.len(),
            outcome.max_steps(),
        );
        assert!(exclusive, "exclusiveness violated at seed {seed}");
        // Wait-freedom: every non-crashed process got a name (contention
        // never exceeded capacity k).
        assert_eq!(names.len() + outcome.crashed.len(), k);
    }
    println!("\nall survivors named, all names exclusive, under every storm.");
}
