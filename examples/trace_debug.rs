//! The debugging workflow: hunt for an interesting interleaving with
//! seeded-random schedules, render it as a timeline, and replay it
//! bit-for-bit.
//!
//! The program under test is the two-register competition of Figure 1:
//! we search for the schedule where *nobody* wins the slot (both
//! contenders reserve, then both observe the other's reservation) — the
//! paper's remark that "this specification does not require a register to
//! be won... when there are multiple contenders".
//!
//! Run with: `cargo run --example trace_debug`

use exclusive_selection::renaming::SlotBank;
use exclusive_selection::sim::policy::{RandomPolicy, Scripted};
use exclusive_selection::sim::trace_view;
use exclusive_selection::{RegAlloc, SimBuilder};

fn main() {
    let build = || {
        let mut alloc = RegAlloc::new();
        let bank = SlotBank::new(&mut alloc, 1);
        (bank, alloc.total())
    };

    // 1. Search: find a seed where both contenders lose.
    let mut found = None;
    for seed in 0..200u64 {
        let (bank, regs) = build();
        let outcome = SimBuilder::new(regs, Box::new(RandomPolicy::new(seed)))
            .record_trace(true)
            .run(2, |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1));
        let wins: Vec<bool> = outcome
            .results
            .iter()
            .map(|r| *r.as_ref().unwrap())
            .collect();
        if wins == [false, false] {
            found = Some((seed, outcome.trace.unwrap()));
            break;
        }
    }
    let (seed, trace) = found.expect("the nobody-wins interleaving exists and is common");
    println!("seed {seed} produced the nobody-wins interleaving:\n");

    // 2. Render the schedule.
    println!("{}", trace_view::render(&trace));
    println!("{}\n", trace_view::summarize(&trace));

    // 3. Replay it exactly.
    let (bank, regs) = build();
    let replay = SimBuilder::new(regs, Box::new(Scripted::from_trace(&trace)))
        .record_trace(true)
        .run(2, |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1));
    let wins: Vec<bool> = replay
        .results
        .iter()
        .map(|r| *r.as_ref().unwrap())
        .collect();
    assert_eq!(wins, [false, false], "replay diverged");
    assert_eq!(replay.trace.unwrap(), trace, "replay schedule diverged");
    println!("replayed bit-for-bit: both contenders exited without a win —");
    println!("allowed by Lemma 1 (exclusive wins, solo wins), and exactly why the");
    println!("renaming algorithms route around contested name slots via expansion.");
}
