//! A crash-tolerant append-only ledger built on the wait-free repository
//! (`Altruistic-Deposit`, Theorem 9): every record is deposited in its own
//! register and can never be overwritten — even when depositors crash at
//! the worst moments, at most n(n−1) registers are lost.
//!
//! Run with: `cargo run --example ledger`

use exclusive_selection::{AltruisticDeposit, Ctx, Pid, RegAlloc, ThreadedShm};

fn main() {
    let n = 4usize;
    let per_process = 6u64;
    let mut alloc = RegAlloc::new();
    let ledger = AltruisticDeposit::new(&mut alloc, n, 512);
    let mem = ThreadedShm::new(alloc.total(), n);

    // Process 2 will crash partway through its third record.
    mem.crash_at_step(Pid(2), 400);

    let entries: Vec<Vec<(u64, u64)>> = std::thread::scope(|s| {
        (0..n)
            .map(|p| {
                let (ledger, mem) = (&ledger, &mem);
                s.spawn(move || {
                    let ctx = Ctx::new(mem, Pid(p));
                    let mut st = ledger.depositor_state(ctx.pid());
                    let mut written = Vec::new();
                    for i in 0..per_process {
                        let record = (p as u64) << 32 | i; // (who, seq)
                        match ledger.deposit(ctx, &mut st, record) {
                            Ok(reg) => written.push((reg, record)),
                            Err(_) => {
                                println!("p{p} crashed after {} records", written.len());
                                break;
                            }
                        }
                    }
                    written
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    // Audit: every acknowledged record is still in its register
    // (persistence), no register holds two records (exclusiveness).
    let occupancy = ledger.arena().occupancy(&mem, Pid(0));
    let mut total = 0;
    for (p, written) in entries.iter().enumerate() {
        for &(reg, record) in written {
            assert_eq!(
                occupancy[(reg - 1) as usize],
                Some(record),
                "p{p}'s record at R_{reg} was lost or overwritten"
            );
            total += 1;
        }
    }
    let frontier = occupancy
        .iter()
        .rposition(Option::is_some)
        .map_or(0, |i| i + 1);
    let holes = occupancy[..frontier].iter().filter(|v| v.is_none()).count();
    println!("\nledger audit: {total} records persisted across registers R_1..R_{frontier}");
    println!(
        "holes (registers lost to the crash): {holes} — Theorem 9 allows up to n(n−1) = {}",
        n * (n - 1)
    );
    assert!(holes <= n * (n - 1) + (n - 1));
}
