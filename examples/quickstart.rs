//! Quickstart: fully adaptive wait-free renaming across real threads.
//!
//! Eight workers arrive with sparse, arbitrary 64-bit identifiers (think
//! session tokens). Each acquires a small dense name — exclusively and
//! wait-free — via `Adaptive-Rename` (Theorem 4), without anyone knowing
//! in advance how many workers will show up or how large their original
//! identifiers are.
//!
//! Run with: `cargo run --example quickstart`

use exclusive_selection::{AdaptiveRename, Ctx, Pid, RegAlloc, Rename, RenameConfig, ThreadedShm};

fn main() {
    let system_size = 8;
    let mut alloc = RegAlloc::new();
    let algo = AdaptiveRename::new(&mut alloc, system_size, &RenameConfig::default());
    let mem = ThreadedShm::new(alloc.total(), system_size);
    println!(
        "adaptive renaming over n={system_size} processes ({} registers reserved)",
        alloc.total()
    );

    // Only 5 of the possible 8 processes actually contend, with huge ids.
    let arrivals: Vec<(usize, u64)> = vec![
        (0, 0xDEAD_BEEF_0001),
        (1, 42),
        (2, u64::MAX - 7),
        (3, 0x1234_5678_9ABC),
        (4, 7_777_777_777),
    ];
    let k = arrivals.len();

    let mut results: Vec<(u64, u64, u64)> = std::thread::scope(|s| {
        arrivals
            .iter()
            .map(|&(p, original)| {
                let (algo, mem) = (&algo, &mem);
                s.spawn(move || {
                    let ctx = Ctx::new(mem, Pid(p));
                    let name = algo.rename(ctx, original).unwrap().expect_named();
                    (original, name, ctx.steps())
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    results.sort_by_key(|r| r.1);

    println!("\n{:>20}  {:>8}  {:>6}", "original", "new name", "steps");
    for (original, name, steps) in &results {
        println!("{original:>20}  {name:>8}  {steps:>6}");
    }

    let bound = 8 * k as u64 - (k as f64).log2().floor() as u64 - 1;
    let max = results.iter().map(|r| r.1).max().unwrap();
    println!("\ncontention k = {k}: Theorem 4 guarantees names ≤ 8k − lg k − 1 = {bound}; observed max = {max}");
    assert!(max <= bound);
}
