//! Unbounded-Naming (Theorem 10): processes keep claiming fresh integers
//! exclusively, forever, with no shared record in the integers themselves
//! — availability lives in the published `B_p` suites. At the end we
//! audit exclusivity and count the integers that were skipped.
//!
//! Run with: `cargo run --example unbounded_names`

use exclusive_selection::{Ctx, Pid, RegAlloc, ThreadedShm, UnboundedNaming};
use std::collections::BTreeSet;

fn main() {
    let n = 4usize;
    let per_process = 10usize;
    let mut alloc = RegAlloc::new();
    let naming = UnboundedNaming::new(&mut alloc, n);
    let mem = ThreadedShm::new(alloc.total(), n);
    println!(
        "unbounded naming over n={n} processes ({} auxiliary registers — finite, as required)",
        alloc.total()
    );

    let claimed: Vec<(usize, Vec<u64>)> = std::thread::scope(|s| {
        (0..n)
            .map(|p| {
                let (naming, mem) = (&naming, &mem);
                s.spawn(move || {
                    let ctx = Ctx::new(mem, Pid(p));
                    let mut st = naming.namer_state();
                    let names: Vec<u64> = (0..per_process)
                        .map(|_| naming.acquire(ctx, &mut st).unwrap())
                        .collect();
                    (p, names)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    let mut all = BTreeSet::new();
    for (p, names) in &claimed {
        println!("p{p} claimed: {names:?}");
        for &name in names {
            assert!(all.insert(name), "integer {name} claimed twice!");
        }
    }
    let frontier = *all.iter().max().unwrap();
    let skipped: Vec<u64> = (1..=frontier).filter(|i| !all.contains(i)).collect();
    println!(
        "\n{} integers claimed exclusively up to {frontier}; skipped: {skipped:?} (Theorem 10 allows ≤ n−1 = {})",
        all.len(),
        n - 1
    );
    assert!(skipped.len() < n);
}
