//! Store&Collect as a progress board — the workload the paper's
//! introduction motivates: many crash-prone workers repeatedly publish
//! their progress; a coordinator snapshots everyone's latest value in
//! `O(k)` reads without knowing who or how many are participating.
//!
//! Run with: `cargo run --example progress_board`

use exclusive_selection::{
    Ctx, Pid, RegAlloc, RenameConfig, StoreCollect, StoreHandle, ThreadedShm,
};
use std::sync::atomic::{AtomicBool, Ordering};

fn main() {
    let system_size = 8;
    let workers = 5usize;
    let mut alloc = RegAlloc::new();
    let board = StoreCollect::adaptive(&mut alloc, system_size, &RenameConfig::default());
    let mem = ThreadedShm::new(alloc.total(), system_size);
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Workers: store progress 0..=100 in steps of 20.
        for w in 0..workers {
            let (board, mem, done) = (&board, &mem, &done);
            s.spawn(move || {
                let ctx = Ctx::new(mem, Pid(w));
                let mut handle = StoreHandle::new();
                let badge = (w as u64 + 1) * 1111; // arbitrary original name
                for pct in (0..=100u64).step_by(20) {
                    board.store(ctx, &mut handle, badge, pct).unwrap();
                    std::thread::yield_now();
                }
                if w == workers - 1 {
                    done.store(true, Ordering::SeqCst);
                }
            });
        }
        // Coordinator: poll the board until every worker reports 100%.
        let (board, mem, done) = (&board, &mem, &done);
        s.spawn(move || {
            let ctx = Ctx::new(mem, Pid(workers));
            loop {
                let before = ctx.steps();
                let view = board.collect(ctx).unwrap();
                let cost = ctx.steps() - before;
                let all_done = view.len() == workers && view.iter().all(|&(_, pct)| pct == 100);
                println!(
                    "collect ({cost:>3} reads): {:?}",
                    view.iter()
                        .map(|&(badge, pct)| format!("#{badge}:{pct}%"))
                        .collect::<Vec<_>>()
                );
                if all_done {
                    break;
                }
                if done.load(Ordering::SeqCst) {
                    // Workers finished; one final collect sees it all.
                    let view = board.collect(ctx).unwrap();
                    assert!(view.iter().all(|&(_, pct)| pct == 100));
                    println!("final: all {} workers at 100%", view.len());
                    break;
                }
                std::thread::yield_now();
            }
        });
    });
    println!("collect cost stayed O(k): the doubling-interval controls stop the scan at the in-use prefix.");
}
