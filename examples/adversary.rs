//! The Theorem 6 lower-bound adversary in action: watch the pigeonhole
//! pool shrink stage by stage while it forces every would-be renamer to
//! keep taking steps.
//!
//! Run with: `cargo run --release --example adversary`

use exclusive_selection::lowerbound::{run_against, theorem6_bound};
use exclusive_selection::{MoirAnderson, RegAlloc, Rename};

fn main() {
    let k = 8usize;
    println!("pigeonhole adversary vs Moir-Anderson(k={k}) while N grows:\n");
    println!(
        "{:>6}  {:>5}  {:>5}  {:>6}  {:>7}  {:>9}  pool path",
        "N", "M", "r", "bound", "stages", "observed"
    );
    for n in [64usize, 128, 256] {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, k);
        let m = algo.name_bound();
        let r = alloc.total() as u64;
        let report = run_against(n, alloc.total(), k, m, r, |ctx| {
            Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name())
        });
        println!(
            "{:>6}  {:>5}  {:>5}  {:>6}  {:>7}  {:>9}  {:?}",
            n,
            m,
            r,
            theorem6_bound(k as u64, n as u64, m, r),
            report.stages,
            report.max_steps_named,
            report.pool_sizes
        );
        assert!(report.exclusive);
        assert!(report.max_steps_named >= report.bound);
    }
    println!("\nobserved worst-case steps dominate the closed-form bound at every N,");
    println!("and the pool never shrinks faster than the 2r pigeonhole factor per stage.");
}
