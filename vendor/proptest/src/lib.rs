//! Offline shim for `proptest`: deterministic random-sampling property
//! testing exposing the proptest API subset this workspace's tests use —
//! `proptest!`, `prop_assert*!`, `prop_oneof!`, [`Strategy`] with
//! `prop_map`/`prop_perturb`, [`any`], range strategies, tuple strategies
//! and `collection::vec`.
//!
//! Differences from the real crate: cases are sampled from a fixed
//! deterministic seed (no OS entropy, no persisted failure regressions)
//! and failing cases are *not* shrunk — the failing inputs are reported
//! as generated.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// An error carrying `message`.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The random source handed to strategies (and to `prop_perturb`
/// closures). Deterministic: every run of a test sees the same stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// The deterministic root generator of a test, distinguished by the
    /// test's name so sibling tests draw independent streams.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xE5E1_D305_1BAD_5EEDu64;
        for b in name.bytes() {
            seed = seed
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(b));
        }
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Samples uniformly from `range` (rand 0.9 spelling, which is what
    /// `prop_perturb` closures in this workspace use).
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        self.inner.gen_range(range)
    }

    /// An independent generator split off this one.
    #[must_use]
    pub fn fork(&mut self) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(self.inner.next_u64()),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Maps generated values through `f` with access to a random source.
    fn prop_perturb<O, F>(self, f: F) -> Perturb<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value, TestRng) -> O,
    {
        Perturb { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_perturb`].
#[derive(Clone, Debug)]
pub struct Perturb<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Perturb<S, F>
where
    S: Strategy,
    F: Fn(S::Value, TestRng) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        let value = self.inner.generate(rng);
        (self.f)(value, rng.fork())
    }
}

/// Uniform choice between type-erased strategies (built by
/// [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly magnitude-spread values.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.next_u64() % 64) as i32 - 32;
        mantissa * (exp as f64).exp2()
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over every value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(usize, u64, u32, u16, u8, f64);

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty length range");
        VecStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.random_range(self.size.clone());
            let mut set = std::collections::BTreeSet::new();
            // Bounded retries: duplicate draws (tiny element domains) must
            // not loop forever; a smaller set is still a valid sample.
            for _ in 0..target.saturating_mul(20).max(16) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// A strategy for ordered sets of `element` values with size drawn
    /// from `size` (possibly smaller when the element domain is tiny).
    pub fn btree_set<S: Strategy>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(!size.is_empty(), "empty size range");
        BTreeSetStrategy { element, size }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `(left == right)`\n  left: {l:?}\n right: {r:?}"
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{} (left: {l:?}, right: {r:?})",
                        format!($($fmt)*)
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `(left != right)`\n  both: {l:?}"
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{} (both: {l:?})",
                        format!($($fmt)*)
                    )));
                }
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `fn` becomes a `#[test]` running its
/// body over deterministically sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let input_desc = {
                    let mut s = String::new();
                    $(s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                    s
                };
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {e}\ninputs:\n{input_desc}",
                        case + 1,
                        config.cases,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams_per_test_name() {
        let draw = |name: &str| {
            let mut rng = TestRng::for_test(name);
            (0..8)
                .map(|_| rng.random_range(0u64..1000))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw("a"), draw("a"));
        assert_ne!(draw("a"), draw("b"));
    }

    #[test]
    fn union_covers_all_arms() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::for_test("union");
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let s = prop::collection::vec(0usize..10, 2..5);
        let mut rng = TestRng::for_test("vec");
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_checks(
            a in 0u64..100,
            b in any::<bool>(),
            v in prop::collection::vec(1usize..4, 1..6),
        ) {
            prop_assert!(a < 100);
            prop_assert_ne!(v.len(), 0);
            prop_assert_eq!(b, b);
        }

        #[test]
        fn map_and_perturb_compose(
            x in (0u64..50).prop_map(|v| v * 2).prop_perturb(|v, mut rng| v + rng.random_range(0u64..=1)),
        ) {
            prop_assert!(x <= 99);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
