//! Offline shim for `criterion`: a wall-clock micro-benchmark harness
//! exposing the criterion API subset this workspace's benches use. Each
//! benchmark is warmed up, run for `sample_size` timed samples, and its
//! mean/min sample time printed — no statistics beyond that.
//!
//! Set `CRITERION_SHIM_JSON=<path>` to additionally append one JSON line
//! per benchmark (`{"id": ..., "mean_ns": ..., "min_ns": ..., "iters": ...}`)
//! to `<path>` — used by the experiment harness to record results.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare function name.
    pub fn from_name(name: impl Into<String>) -> Self {
        BenchmarkId { id: name.into() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.sample_size;
        run_benchmark(&id, sample_size, |b| f(b));
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (droppable no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Measures `routine`: one warmup call, then `sample_size` timed
    /// samples of enough iterations each to dominate timer overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.sample_size == 0 {
            // --test mode: exercise the body once, skip measurement.
            black_box(routine());
            return;
        }
        // Warmup + calibration: aim for samples of >= ~1 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// `cargo bench ... -- --test`: run every benchmark body exactly once
/// with no timed sampling — CI's smoke mode for bench code.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    if test_mode() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 0,
            sample_size: 0,
        };
        f(&mut b);
        println!("{id:<50} ok (--test mode: body ran once, not timed)");
        return;
    }
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 0,
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    let per_iter = |d: &Duration| d.as_nanos() as f64 / b.iters_per_sample as f64;
    let mean = b.samples.iter().map(per_iter).sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
    println!(
        "{id:<50} time: [mean {} min {}]  ({} samples x {} iters)",
        format_ns(mean),
        format_ns(min),
        b.samples.len(),
        b.iters_per_sample
    );
    if let Ok(path) = std::env::var("CRITERION_SHIM_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                r#"{{"id":"{id}","mean_ns":{mean:.1},"min_ns":{min:.1},"iters":{}}}"#,
                b.iters_per_sample
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut ran = 0;
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &x| {
            ran += 1;
            b.iter(|| black_box(x * 2));
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_name("g").to_string(), "g");
    }
}
