//! Offline shim for `rand`: a deterministic, seedable generator behind the
//! rand 0.8 API subset this workspace uses (`SmallRng`, `Rng::gen_range`,
//! `Rng::gen_bool`, `SeedableRng::seed_from_u64`, `seq::index::sample`).
//!
//! The random stream differs from the real crate's; everything that
//! matters here — determinism given a seed, distinct streams for distinct
//! seeds, approximate uniformity — is preserved.

#![forbid(unsafe_code)]

/// Source of raw random 64-bit words.
pub trait RngCore {
    /// The next raw word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the range argument of [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Samples a value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Rejection-free (modulo-bias-negligible for the sizes used here)
/// sampling of `[0, bound)`; `bound > 0`.
fn below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    // Lemire's multiply-shift reduction.
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// Uniform in `[0, 1)` with 53 random mantissa bits.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64\*).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 of the seed avoids weak low-entropy states (and
            // the all-zero state xorshift cannot leave).
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling.
    pub mod index {
        use crate::{Rng, RngCore};

        /// A set of sampled indices.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a vector.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly,
        /// via a partial Fisher-Yates shuffle.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let stream = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..32).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8));
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(4);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn sample_distinct_and_in_range() {
        let mut r = SmallRng::seed_from_u64(5);
        let idx = seq::index::sample(&mut r, 100, 10).into_vec();
        assert_eq!(idx.len(), 10);
        let set: std::collections::BTreeSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn f64_ranges() {
        let mut r = SmallRng::seed_from_u64(6);
        for _ in 0..100 {
            let v = r.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
