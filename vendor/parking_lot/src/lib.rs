//! Offline shim for `parking_lot`: the subset of its API this workspace
//! uses, implemented over `std::sync`. Unlike the std primitives (and like
//! the real parking_lot), locks here do not poison: a panic while holding a
//! lock leaves it usable.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // std guard; it is `Some` at every other moment.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = std::sync::Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
