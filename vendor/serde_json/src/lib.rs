//! Offline shim for `serde_json`: an order-preserving JSON value type, a
//! printer and a [`from_str`] parser — the subset the experiment tables
//! need for JSON-lines output and the bench gate needs to read committed
//! artifacts back.

#![forbid(unsafe_code)]

use std::fmt;

mod parse;

pub use parse::{from_str, ParseError};

/// An insertion-order-preserving string-keyed map of JSON values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` at `key`, replacing (in place) any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value at `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        i64::try_from(v).map_or(Value::Float(v as f64), Value::Int)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    write!(f, "null") // JSON has no NaN/Inf
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_object_in_insertion_order() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Int(1));
        m.insert("a".into(), Value::String("x\"y".into()));
        m.insert("c".into(), Value::Float(1.5));
        assert_eq!(
            Value::Object(m).to_string(),
            r#"{"b":1,"a":"x\"y","c":1.5}"#
        );
    }

    #[test]
    fn whole_floats_keep_a_decimal() {
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
    }

    #[test]
    fn insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Int(1));
        let old = m.insert("k".into(), Value::Int(2));
        assert_eq!(old, Some(Value::Int(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&Value::Int(2)));
    }

    #[test]
    fn array_and_null() {
        let v = Value::Array(vec![Value::Null, Value::Bool(true)]);
        assert_eq!(v.to_string(), "[null,true]");
    }
}
