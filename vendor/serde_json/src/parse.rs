//! A small recursive-descent JSON parser for [`Value`] — enough to read
//! back the machine-written artifacts this workspace emits
//! (`BENCH_engine.json`, `BENCH_grid.json`): objects, arrays, strings
//! with the escapes the printer produces, integers, floats, booleans and
//! `null`.

use crate::{Map, Value};

/// Where and why parsing stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first offending
/// character when `text` is not a single well-formed JSON value.
pub fn from_str(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("expected a JSON value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected `{`")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogates (printer never emits them) are
                            // replaced, not an error.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("malformed number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error("malformed integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_printer_output() {
        let mut m = Map::new();
        m.insert("workload".into(), Value::String("majority/k=8 x64".into()));
        m.insert("speedup".into(), Value::Float(123.552));
        m.insert("trials".into(), Value::Int(64));
        m.insert(
            "flags".into(),
            Value::Array(vec![Value::Bool(true), Value::Null]),
        );
        let doc = Value::Array(vec![Value::Object(m)]);
        let text = doc.to_string();
        assert_eq!(from_str(&text), Ok(doc));
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let v = from_str(" { \"a\\n\\\"b\" : [ 1 , -2.5e1 ] } ").unwrap();
        let Value::Object(m) = v else {
            panic!("not an object")
        };
        assert_eq!(
            m.get("a\n\"b"),
            Some(&Value::Array(vec![Value::Int(1), Value::Float(-25.0)]))
        );
    }

    #[test]
    fn parses_unicode_escape_and_raw_unicode() {
        assert_eq!(
            from_str("\"\\u0041π\"").unwrap(),
            Value::String("Aπ".into())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"open").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn parses_the_bench_artifact_shape() {
        let text = r#"[{"workload":"majority_round/k=8","threads_ms":0.468,"engine_ms":0.0037,"speedup":123.55},{"workload":"machine_pool/snapshot_compact/n=128 x8","recycle_off_allocs":2048,"recycle_on_allocs":0}]"#;
        let Value::Array(rows) = from_str(text).unwrap() else {
            panic!("not an array");
        };
        assert_eq!(rows.len(), 2);
        let Value::Object(first) = &rows[0] else {
            panic!("row not an object");
        };
        assert_eq!(first.get("speedup"), Some(&Value::Float(123.55)));
    }
}
