//! # Asynchronous Exclusive Selection
//!
//! A complete Rust implementation of *Asynchronous Exclusive Selection*
//! (Bogdan S. Chlebus & Dariusz R. Kowalski, PODC 2008 / arXiv:1512.09314):
//! wait-free **renaming**, **store&collect** and **unbounded naming** for
//! asynchronous crash-prone processes communicating only through shared
//! read/write registers — plus the substrate to run, test and measure them:
//! a step-counted register model, a deterministic adversarial scheduler,
//! lossless-expander construction, and the paper's lower-bound adversary.
//!
//! ## Crate map
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`shm`] | `exsel-shm` | registers, step counting, crashes, atomic snapshots, step machines |
//! | [`sim`] | `exsel-sim` | deterministic lock-step execution: thread-backed scheduler **and** the single-threaded step-machine engine |
//! | [`expander`] | `exsel-expander` | bipartite lossless expanders (Lemmas 2–3) |
//! | [`renaming`] | `exsel-core` | Majority, Basic-, PolyLog-, Efficient-, Almost-Adaptive and Adaptive renaming (Lemmas 4–5, Theorems 1–4) + baselines |
//! | [`storecollect`] | `exsel-storecollect` | Store&Collect, four knowledge settings (Theorem 5) |
//! | [`unbounded`] | `exsel-unbounded` | Repository & Unbounded-Naming (Theorems 8–10) |
//! | [`lowerbound`] | `exsel-lowerbound` | pigeonhole adversary (Theorems 6–7) |
//!
//! The most-used types are re-exported at the top level.
//!
//! ## Quickstart
//!
//! ```
//! use exclusive_selection::{AdaptiveRename, Ctx, Pid, RegAlloc, Rename, RenameConfig, ThreadedShm};
//!
//! // Fully adaptive renaming: neither the contention nor the original
//! // name range needs to be known.
//! let mut alloc = RegAlloc::new();
//! let algo = AdaptiveRename::new(&mut alloc, 8, &RenameConfig::default());
//! let mem = ThreadedShm::new(alloc.total(), 8);
//!
//! let name = algo
//!     .rename(Ctx::new(&mem, Pid(0)), 123_456_789)
//!     .unwrap()
//!     .expect_named();
//! assert!(name >= 1 && name <= 7); // 8k − lg k − 1 with k = 1
//! ```
//!
//! ## Execution backends
//!
//! Simulated executions run on either of two backends with identical
//! semantics (same policy ⇒ same trace, steps and results):
//!
//! * [`SimBuilder`] — one OS thread per simulated process, blocking
//!   closures. Use for closure-style bodies and code without a
//!   step-machine form.
//! * [`StepEngine`] — zero threads: processes are [`StepMachine`]s
//!   (obtained from [`StepRename::begin_rename`] or built by hand) and
//!   the whole execution is a single-threaded loop. Orders of magnitude
//!   faster; use for exhaustive exploration, adversary searches and
//!   large crash storms. See `BENCH_engine.json` for measurements.
//!
//! See `examples/` for runnable scenarios and `EXPERIMENTS.md` for the
//! paper-claim reproduction tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use exsel_core as renaming;
pub use exsel_expander as expander;
pub use exsel_lowerbound as lowerbound;
pub use exsel_shm as shm;
pub use exsel_sim as sim;
pub use exsel_storecollect as storecollect;
pub use exsel_unbounded as unbounded;

pub use exsel_core::{
    AdaptiveRename, AlmostAdaptive, BasicRename, EfficientRename, Majority, MoirAnderson, Outcome,
    PolyLogRename, Rename, RenameConfig, SnapshotRename, StepRename,
};
pub use exsel_shm::{
    drive, Crash, Ctx, Memory, Pid, Poll, RegAlloc, RegId, ShmOp, SnapArena, SnapArenaStats,
    Snapshot, Step, StepMachine, ThreadedShm, Word,
};
pub use exsel_sim::{SimBuilder, StepEngine};
pub use exsel_storecollect::{StoreCollect, StoreHandle};
pub use exsel_unbounded::{AltruisticDeposit, SelfishDeposit, UnboundedNaming};
