//! Crash and budget semantics of the pooled wait-free deposit machines:
//! crashing any single depositor mid-deposit — at any point of its
//! execution, under any seeded schedule — must leave every claimed
//! arena register exclusive and every *surviving* depositor complete
//! (Theorem 9's wait-freedom), and exhausting the engine's operation
//! budget must crash the stragglers with a **budget** cause
//! (`SimOutcome::budget_crashed`), distinguishable from adversary
//! crashes. Mirrors `tests/crash_semantics.rs` for the renamers.

use exclusive_selection::sim::policy::{CrashAtStep, Policy, RandomPolicy, RoundRobin};
use exclusive_selection::sim::{MachinePool, StepEngine};
use exclusive_selection::{Pid, RegAlloc, StepMachine};
use exsel_unbounded::{AltruisticDeposit, DepositOp};
use proptest::prelude::*;

const N: usize = 3;
const ROUNDS: usize = 2;

/// One adversarial pooled execution: `victim` is crashed the moment it
/// reaches local step `crash_step`; everyone else runs under the seeded
/// random schedule. Returns the per-machine claimed registers and the
/// crashed pids.
fn run_with_crash(
    repo: &AltruisticDeposit,
    num_registers: usize,
    victim: usize,
    crash_step: u64,
    seed: u64,
) -> (Vec<Vec<u64>>, Vec<Pid>) {
    let mut engine = StepEngine::reusable(num_registers);
    let mut pool: MachinePool<DepositOp<'_>> = (0..N)
        .map(|p| repo.begin_deposit(Pid(p), p as u64 * 1000, ROUNDS))
        .collect();
    let mut policy = CrashAtStep::new(Box::new(RandomPolicy::new(seed)), Pid(victim), crash_step);
    engine.run_pool(&mut policy, &mut pool);
    (
        pool.machines()
            .iter()
            .map(|m| m.deposits().to_vec())
            .collect(),
        engine.adversary_crashed().collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn single_crash_mid_deposit_keeps_claims_exclusive_and_survivors_complete(
        victim in 0..N,
        crash_step in 0u64..60,
        seed in 0u64..10_000,
    ) {
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, N, 512);
        let (deposits, crashed) =
            run_with_crash(&repo, alloc.total(), victim, crash_step, seed);

        // Exclusiveness over every claim — the crashed machine's
        // completed deposits are permanent and still count.
        let mut all: Vec<u64> = deposits.iter().flatten().copied().collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(
            all.len(),
            total,
            "duplicate deposit registers under crash of {} at step {} (seed {}): {:?}",
            victim,
            crash_step,
            seed,
            deposits
        );

        // At most the one victim crashed; survivors are wait-free and
        // must have completed all their rounds.
        prop_assert!(crashed.len() <= 1);
        if let Some(pid) = crashed.first() {
            prop_assert_eq!(pid.0, victim);
            prop_assert!(deposits[victim].len() < ROUNDS);
        }
        for (pid, claimed) in deposits.iter().enumerate() {
            if !crashed.iter().any(|c| c.0 == pid) {
                prop_assert_eq!(
                    claimed.len(),
                    ROUNDS,
                    "survivor {} incomplete (victim {}, step {}, seed {})",
                    pid,
                    victim,
                    crash_step,
                    seed
                );
            }
        }
    }
}

#[test]
fn budget_exhaustion_crashes_pooled_deposit_machines_with_budget_cause() {
    let mut alloc = RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, N, 512);
    // Far too few operations for any deposit to complete (a solo first
    // deposit alone costs dozens of publication and snapshot steps).
    let mut engine = StepEngine::reusable(alloc.total())
        .max_total_ops(30)
        .panic_on_budget(false);
    let mut pool: MachinePool<DepositOp<'_>> = (0..N)
        .map(|p| repo.begin_deposit(Pid(p), p as u64 * 1000, ROUNDS))
        .collect();
    let mut policy = RoundRobin::new();
    engine.run_pool(&mut policy, &mut pool);

    assert_eq!(engine.adversary_crashed().count(), 0);
    assert_eq!(
        engine.budget_crashed().count(),
        N,
        "all stragglers budget-crashed"
    );
    assert_eq!(engine.metrics().budget_crashes, N);
    assert!(pool.results().iter().all(|r| matches!(r, Some(Err(_)))));
    assert_eq!(pool.completed().count(), 0);
}

#[test]
fn budget_exhaustion_is_reported_in_the_boxed_outcome_too() {
    let mut alloc = RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, N, 512);
    let mut engine = StepEngine::reusable(alloc.total())
        .max_total_ops(30)
        .panic_on_budget(false);
    let mut policy: Box<dyn Policy> = Box::new(RoundRobin::new());
    let outcome = engine.run_trial(
        policy.as_mut(),
        (0..N)
            .map(|p| -> Box<dyn StepMachine<Output = Option<u64>> + '_> {
                Box::new(repo.begin_deposit(Pid(p), p as u64 * 1000, ROUNDS))
            })
            .collect(),
    );
    assert!(outcome.budget_exhausted());
    assert_eq!(outcome.budget_crashed.len(), N);
    assert!(outcome.crashed.is_empty());
    assert!(outcome.results.iter().all(Result::is_err));
}

#[test]
fn generous_budget_lets_every_depositor_finish() {
    // The complement: with the default budget the same pool completes,
    // proving the budget crashes above were the budget's doing.
    let mut alloc = RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, N, 512);
    let mut engine = StepEngine::reusable(alloc.total()).panic_on_budget(false);
    let mut pool: MachinePool<DepositOp<'_>> = (0..N)
        .map(|p| repo.begin_deposit(Pid(p), p as u64 * 1000, ROUNDS))
        .collect();
    let mut policy = RoundRobin::new();
    engine.run_pool(&mut policy, &mut pool);
    assert_eq!(pool.completed().count(), N);
    assert_eq!(engine.budget_crashed().count(), 0);
}
