//! Property tests of the Figure 1 primitive (`Compete-For-Register`):
//! Lemma 1's two guarantees under arbitrary schedules, contenders and
//! crash patterns.

use std::collections::BTreeSet;

use exclusive_selection::renaming::SlotBank;
use exclusive_selection::sim::policy::{CrashStorm, RandomPolicy, Solo};
use exclusive_selection::{Pid, RegAlloc, SimBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exclusive wins: across arbitrary schedules and contender counts,
    /// no slot is ever won twice; and a slot someone won reads back the
    /// winner's token.
    #[test]
    fn wins_exclusive_under_arbitrary_schedules(
        contenders in 2usize..8,
        slots in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut alloc = RegAlloc::new();
        let bank = SlotBank::new(&mut alloc, slots);
        let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
            .run(contenders, |ctx| {
                let token = ctx.pid().0 as u64 + 1;
                // Everyone walks all slots, claiming the first win.
                for s in 0..bank.len() {
                    if bank.compete(ctx, s, token)? {
                        return Ok(Some((s, token)));
                    }
                }
                Ok(None)
            });
        let wins: Vec<(usize, u64)> = outcome.completed().flatten().copied().collect();
        let won_slots: BTreeSet<usize> = wins.iter().map(|&(s, _)| s).collect();
        prop_assert_eq!(won_slots.len(), wins.len(), "a slot was won twice: {:?}", wins);
    }

    /// Solo wins: the hero, scheduled alone, always wins its first slot,
    /// no matter what crash storm hits everyone else.
    #[test]
    fn solo_contender_always_wins(
        contenders in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut alloc = RegAlloc::new();
        let bank = SlotBank::new(&mut alloc, contenders);
        let hero = Pid(0);
        let policy = CrashStorm::new(Box::new(Solo::new(hero)), seed, 0.3, contenders.saturating_sub(1))
            .protect([hero]);
        let outcome = SimBuilder::new(alloc.total(), Box::new(policy))
            .run(contenders, |ctx| {
                let token = ctx.pid().0 as u64 + 1;
                for s in 0..bank.len() {
                    if bank.compete(ctx, s, token)? {
                        return Ok(Some(s));
                    }
                }
                Ok(None)
            });
        // The hero runs to completion before anyone else takes a step:
        // slot 0 is uncontested when it arrives, so it must win slot 0.
        prop_assert_eq!(outcome.results[0].as_ref().unwrap(), &Some(0));
    }

    /// Crashed contenders can block a slot (both exit) but never create a
    /// second winner.
    #[test]
    fn crashes_never_create_double_wins(
        contenders in 2usize..6,
        seed in any::<u64>(),
        budget in 1usize..5,
    ) {
        let mut alloc = RegAlloc::new();
        let bank = SlotBank::new(&mut alloc, 1);
        let policy = CrashStorm::new(Box::new(RandomPolicy::new(seed)), !seed, 0.2, budget);
        let outcome = SimBuilder::new(alloc.total(), Box::new(policy))
            .run(contenders, |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1));
        let winners = outcome.completed().filter(|&&w| w).count();
        prop_assert!(winners <= 1, "{winners} winners on one slot");
    }
}
