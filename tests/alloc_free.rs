//! Proof that the pooled trial loop is allocation-free at steady state:
//! a counting global allocator wraps the system allocator, and after a
//! warm-up phase (which stretches every engine/pool/arena buffer to
//! capacity) repeated `run_pool` trials must perform **zero** heap
//! allocations and zero frees.
//!
//! Three tiers of workload prove the claim end to end:
//!
//! * `Majority` renaming machines (no snapshot) — fully in-place resets,
//!   zero-alloc since PR 3.
//! * Snapshot-backed families (unbounded naming, the wait-free deposit)
//!   — historically only "allocation-stable": every snapshot update
//!   installed a fresh copy-on-write `SnapRecord` and every direct scan
//!   collected a fresh view. The per-object `SnapArena` now recycles
//!   displaced records and retired view buffers in place (reclaimed
//!   under `Arc` uniqueness), so these sweeps are **literally zero**
//!   alloc *and* zero free at steady state too.
//! * A `snapshot-compaction` smoke at n = 128 — one large snapshot
//!   object under pooled updates, the memory shape the arena exists
//!   for (O(n²) embedded-view words per object).
//!
//! Warm-up note: with identical seeds, sweeps are deterministic, but the
//! arena's free-lists converge over the first couple of sweeps (which
//! buffer gets reclaimed at a given take can differ while the lists are
//! still growing, transiently shifting peak demand by a buffer or two).
//! Warm-ups below run the measured sweep a few times first; after that,
//! steady state is exact and permanent.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use exclusive_selection::sim::policy::{RandomPolicy, RoundRobin};
use exclusive_selection::sim::service::mega::{
    MegaServiceConfig, MegaServiceHarness, MegaServiceWorld,
};
use exclusive_selection::sim::service::{
    Admission, Arrivals, ServiceConfig, ServiceHarness, ServiceWorld,
};
use exclusive_selection::sim::{AlgoSet, MachinePool, SetOutput, StepEngine};
use exclusive_selection::{
    Majority, Pid, RegAlloc, RenameConfig, Snapshot, SnapshotRename, StepMachine, Word,
};
use exsel_core::SnapshotRenameOp;
use exsel_shm::snapshot::UpdateOp;
use exsel_shm::SlabBank;
use exsel_unbounded::{AltruisticDeposit, DepositOp, NamingMachine, UnboundedNaming};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the test thread arms this, strictly around the measured
    /// loop — allocations from harness/runtime threads (or from test
    /// scaffolding outside the window) must not trip the assertion.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

// SAFETY: delegates verbatim to the system allocator; the counters are
// plain relaxed atomics behind a const-initialized thread-local gate
// (no allocation on the TLS path).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if MEASURING.with(Cell::get) {
            FREES.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if MEASURING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn counts() -> (u64, u64) {
    (ALLOCS.load(Ordering::SeqCst), FREES.load(Ordering::SeqCst))
}

/// Allocations and frees on this thread while running `f` with the
/// measuring window armed.
fn measured(f: impl FnOnce()) -> (u64, u64) {
    let before = counts();
    MEASURING.with(|m| m.set(true));
    f();
    MEASURING.with(|m| m.set(false));
    let after = counts();
    (after.0 - before.0, after.1 - before.1)
}

#[test]
fn steady_state_pooled_trials_allocate_nothing() {
    let cfg = RenameConfig::default();
    let k = 32usize;
    let mut alloc = RegAlloc::new();
    let algo = AlgoSet::Majority(Majority::new(&mut alloc, 1024, k, &cfg));
    let originals: Vec<u64> = (0..k).map(|i| (i * 1024 / k) as u64 + 1).collect();

    let mut engine = StepEngine::reusable(alloc.total());
    let mut pool = algo.pool(&originals);

    // Warm up: buffers grow to steady-state capacity here.
    for seed in 0..3u64 {
        let mut policy = RandomPolicy::new(seed);
        engine.run_pool(&mut policy, &mut pool);
    }

    // Steady state: machines reset in place, engine scratch and pool
    // buffers reused — the allocator must not be touched at all on this
    // thread while the window is armed.
    let (allocs, frees) = measured(|| {
        for seed in 3..23u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, &mut pool);
            let mut fair = RoundRobin::new();
            engine.run_pool(&mut fair, &mut pool);
        }
    });

    assert_eq!(
        allocs, 0,
        "steady-state pooled trials performed heap allocations"
    );
    assert_eq!(
        frees, 0,
        "steady-state pooled trials freed heap memory (hidden churn)"
    );

    // Sanity: the trials actually ran and named everyone.
    assert_eq!(pool.completed().count(), k);
}

#[test]
fn steady_state_pooled_deposit_trials_are_zero_alloc() {
    const N: usize = 4;
    const ROUNDS: usize = 2;
    let mut alloc = RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, N, 1024);
    let regs = alloc.total();

    let mut engine = StepEngine::reusable(regs);
    let mut pool: MachinePool<DepositOp<'_>> = (0..N)
        .map(|p| repo.begin_deposit(Pid(p), p as u64 * 1000, ROUNDS))
        .collect();

    let sweep = |engine: &mut StepEngine, pool: &mut MachinePool<DepositOp<'_>>| {
        for seed in 0..6u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, pool);
        }
    };

    // Warm up until the snapshot arena's free-lists cover the sweep's
    // peak record/view demand (see the module docs).
    for _ in 0..3 {
        sweep(&mut engine, &mut pool);
    }

    // Steady state: the historical bound here was "allocation-stable,
    // snapshot-record installs only". With the recycling arena the
    // snapshot-backed deposit sweep is now *literally* allocation-free
    // — and free-free: displaced records are reclaimed, never dropped.
    let arena_before = repo.naming().snapshot().arena().stats();
    let (allocs, frees) = measured(|| {
        for _ in 0..2 {
            sweep(&mut engine, &mut pool);
        }
    });
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "steady-state pooled deposit sweeps must not touch the allocator"
    );
    let arena = repo
        .naming()
        .snapshot()
        .arena()
        .stats()
        .since(&arena_before);
    assert_eq!(arena.fresh_allocations(), 0, "arena missed: {arena:?}");
    assert!(
        arena.recycled() > 0,
        "the sweep exercised no snapshot traffic at all"
    );

    // And the pooled loop must beat boxed-per-trial construction on the
    // very same trials: the delta is the per-trial machine boxes plus
    // every AcquireOp/ScanOp/UpdateOp buffer the pool re-arms in place.
    let mut alloc = RegAlloc::new();
    let algo = AlgoSet::Deposit {
        repo: AltruisticDeposit::new(&mut alloc, N, 1024),
        rounds: ROUNDS,
        servers: 0,
    };
    let originals: Vec<u64> = (0..N as u64).map(|p| p * 1000).collect();
    let mut boxed_engine = StepEngine::reusable(alloc.total());
    // Warm the engine scratch so only per-trial costs differ.
    let mut warm = RoundRobin::new();
    boxed_engine.run_trial(
        &mut warm,
        originals
            .iter()
            .enumerate()
            .map(|(p, &o)| -> Box<dyn StepMachine<Output = SetOutput> + '_> {
                Box::new(algo.begin(Pid(p), o))
            })
            .collect(),
    );
    let (boxed_allocs, _) = measured(|| {
        for seed in 0..6u64 {
            let mut policy = RandomPolicy::new(seed);
            boxed_engine.run_trial(
                &mut policy,
                originals
                    .iter()
                    .enumerate()
                    .map(|(p, &o)| -> Box<dyn StepMachine<Output = SetOutput> + '_> {
                        Box::new(algo.begin(Pid(p), o))
                    })
                    .collect(),
            );
        }
    });
    assert!(
        boxed_allocs > 0,
        "boxed-per-trial deposit trials must still allocate (pool wins by {boxed_allocs})"
    );

    // Sanity: deposits happened and stayed exclusive on the last trial.
    let mut all: Vec<u64> = pool
        .machines()
        .iter()
        .flat_map(|m| m.deposits().iter().copied())
        .collect();
    all.sort_unstable();
    assert_eq!(all.len(), N * ROUNDS);
    all.dedup();
    assert_eq!(all.len(), N * ROUNDS, "duplicate deposit registers");
}

#[test]
fn steady_state_pooled_naming_sweeps_are_zero_alloc() {
    // The unbounded-naming acquire loop is the snapshot-heaviest pooled
    // machine: every acquire drives an update + scan of `W`, and every
    // contention retry re-ranks over the published lists. All of it —
    // record installs, direct-scan views, the choose-by-rank scratch —
    // must be allocation-free once warmed.
    const N: usize = 4;
    const ROUNDS: usize = 3;
    let mut alloc = RegAlloc::new();
    let naming = UnboundedNaming::new(&mut alloc, N);
    let mut engine = StepEngine::reusable(alloc.total());
    let mut pool: MachinePool<NamingMachine<'_>> = (0..N)
        .map(|p| naming.begin_machine(Pid(p), ROUNDS))
        .collect();

    let sweep = |engine: &mut StepEngine, pool: &mut MachinePool<NamingMachine<'_>>| {
        for seed in 0..6u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, pool);
        }
    };
    for _ in 0..3 {
        sweep(&mut engine, &mut pool);
    }

    let (allocs, frees) = measured(|| {
        for _ in 0..2 {
            sweep(&mut engine, &mut pool);
        }
    });
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "steady-state pooled naming sweeps must not touch the allocator"
    );

    // Sanity: the last trial claimed N × ROUNDS distinct integers.
    let mut all: Vec<u64> = pool
        .machines()
        .iter()
        .flat_map(|m| m.names().iter().copied())
        .collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), N * ROUNDS, "duplicate names");
}

#[test]
fn steady_state_pooled_snapshot_rename_sweeps_are_zero_alloc() {
    // `SnapshotRenameOp` was the last known steady-state allocation
    // site: every re-proposal round used to construct a fresh `UpdateOp`
    // (with its embedded scanner) and the decide step built fresh sort
    // scratch per scan. With owned, re-armed sub-machines and pooled
    // scratch, the propose/scan/re-propose loop must be exactly
    // (0 allocs, 0 frees) once warmed.
    const K: usize = 8;
    let mut alloc = RegAlloc::new();
    let algo = SnapshotRename::new(&mut alloc, K);
    let mut engine = StepEngine::reusable(alloc.total());
    let mut pool: MachinePool<SnapshotRenameOp<'_>> = (0..K)
        .map(|p| algo.begin_rename_slot(p, 700 + p as u64))
        .collect();

    let sweep = |engine: &mut StepEngine, pool: &mut MachinePool<SnapshotRenameOp<'_>>| {
        for seed in 0..6u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, pool);
        }
    };
    for _ in 0..3 {
        sweep(&mut engine, &mut pool);
    }

    let arena_before = algo.snapshot().arena().stats();
    let (allocs, frees) = measured(|| {
        for _ in 0..2 {
            sweep(&mut engine, &mut pool);
        }
    });
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "steady-state pooled snapshot-rename sweeps must not touch the allocator"
    );
    let arena = algo.snapshot().arena().stats().since(&arena_before);
    assert_eq!(arena.fresh_allocations(), 0, "arena missed: {arena:?}");

    // Sanity: the last trial named every participant, exclusively,
    // within the optimal bound 2K−1.
    let mut names: Vec<u64> = pool
        .results()
        .iter()
        .map(|r| {
            (*r).expect("result recorded")
                .expect("no crashes scheduled")
                .expect_named()
        })
        .collect();
    names.sort_unstable();
    let k = names.len();
    names.dedup();
    assert_eq!(names.len(), k, "duplicate names");
    assert!(names.iter().all(|&m| m >= 1 && m < 2 * K as u64));
}

#[test]
fn repeat_scan_over_unchanged_registers_allocates_nothing() {
    // Regression for the direct double-collect path: a pooled scan
    // re-run over registers that have not moved since its last direct
    // scan must return the generation-tagged cached view — zero
    // allocations, same values, very same buffer.
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, 8);
    let mem = exclusive_selection::ThreadedShm::new(alloc.total(), 1);
    let ctx = exclusive_selection::Ctx::new(&mem, Pid(0));
    for slot in 0..4 {
        snap.update(ctx, slot, Word::Int(slot as u64 + 10)).unwrap();
    }
    let mut op = snap.begin_scan();
    let warm = exclusive_selection::drive(&mut op, ctx).unwrap();

    let mut views = Vec::with_capacity(4);
    let (allocs, frees) = measured(|| {
        for _ in 0..4 {
            op.restart();
            views.push(exclusive_selection::drive(&mut op, ctx).unwrap());
        }
    });
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "repeat scans over unchanged registers must be allocation-free"
    );
    for view in &views {
        assert_eq!(&view[..], &warm[..], "cached view diverged");
    }
}

#[test]
fn snapshot_compaction_smoke_n128() {
    // The compaction smoke: one n = 128 snapshot object — the shape
    // whose embedded views dominate memory (O(n²) words) — under pooled
    // single-writer updates (each embedding a full scan). After warm-up
    // the arena must serve every record and view in place.
    const N: usize = 128;
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, N);
    let mut engine = StepEngine::reusable(alloc.total());
    let mut pool: MachinePool<UpdateOp> = (0..N)
        .map(|p| snap.begin_update(p, Word::Int(p as u64 + 1)))
        .collect();

    let sweep = |engine: &mut StepEngine, pool: &mut MachinePool<UpdateOp>| {
        for seed in 0..3u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, pool);
        }
    };
    for _ in 0..3 {
        sweep(&mut engine, &mut pool);
    }

    let arena_before = snap.arena().stats();
    let (allocs, frees) = measured(|| {
        for _ in 0..2 {
            sweep(&mut engine, &mut pool);
        }
    });
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "n=128 pooled snapshot updates must be allocation-free at steady state"
    );
    let arena = snap.arena().stats().since(&arena_before);
    assert_eq!(arena.fresh_allocations(), 0, "arena missed: {arena:?}");
    assert!(arena.records_recycled >= 2 * 3 * N as u64);

    // Sanity: every writer's component carries its value and a full
    // embedded view.
    assert_eq!(pool.completed().count(), N);
    let regs = engine.registers();
    for (slot, word) in regs.iter().take(N).enumerate() {
        let rec = word.as_snap().expect("component installed");
        assert_eq!(rec.value, Word::Int(slot as u64 + 1));
        assert_eq!(rec.view.len(), N);
    }
}

/// The dynamic footprint checker (`--features check`) must not cost the
/// zero-alloc property: its clock tables are pre-sized at compile time
/// and `observe` is two interval lookups plus a dense-array clock
/// update, so checker-on steady-state trials — engine sweeps and full
/// service sessions alike — stay at literally (0 allocs, 0 frees).
#[cfg(feature = "check")]
#[test]
fn steady_state_checked_trials_are_zero_alloc() {
    let cfg = RenameConfig::default();
    let k = 32usize;
    let mut alloc = RegAlloc::new();
    let algo = AlgoSet::Majority(Majority::new(&mut alloc, 1024, k, &cfg));
    let originals: Vec<u64> = (0..k).map(|i| (i * 1024 / k) as u64 + 1).collect();

    let mut engine = StepEngine::reusable(alloc.total());
    engine.install_checker(algo.checker(k, alloc.total()).unwrap());
    let mut pool = algo.pool(&originals);
    for seed in 0..3u64 {
        let mut policy = RandomPolicy::new(seed);
        engine.run_pool(&mut policy, &mut pool);
    }

    let (allocs, frees) = measured(|| {
        for seed in 3..23u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, &mut pool);
        }
    });
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "checker-on steady-state trials must not touch the allocator"
    );
    assert!(engine.metrics().checker_ops > 0);
    assert_eq!(engine.metrics().checker_violations, 0);

    // And end to end: a checker-on service run is zero-alloc at steady
    // state too (the checker is installed before warm-up, so its only
    // allocations — the compiled tables — predate the window).
    let scfg = ServiceConfig {
        seed: 11,
        target_sessions: 3_000,
        ..ServiceConfig::default()
    };
    let world = ServiceWorld::new(&scfg);
    let checker = exclusive_selection::sim::AccessChecker::for_instance(
        &world,
        scfg.slots,
        world.num_registers(),
    )
    .unwrap();
    let mut harness = ServiceHarness::with_bank(&world, &scfg, SlabBank::new());
    harness.install_checker(checker);
    harness.prime();
    assert!(
        harness.run_until(scfg.target_sessions / 10),
        "service drained during warm-up"
    );
    let (allocs, frees) = measured(|| {
        assert!(
            harness.run_until(scfg.target_sessions),
            "service drained before reaching its session target"
        );
    });
    assert_eq!(harness.checker_violations(), 0);
    assert!(harness.checker().unwrap().trial_ops() > 0);
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "checker-on service steady state must be allocation-free"
    );
}

/// The open-loop service harness end to end: Poisson arrivals, pooled
/// acquire→store→collect→deposit sessions, admission control, and the
/// windowed report, all running out of recycled buffers. `ServiceWorld`
/// pre-seeds the snapshot arenas past any reachable live-buffer
/// high-water, so after a short warm-up (free-list cursors settle, the
/// report vectors are pre-reserved) the remaining ninety percent of the
/// run must be literally zero-alloc and zero-free.
#[test]
fn steady_state_service_sessions_are_zero_alloc() {
    let cfg = ServiceConfig {
        seed: 11,
        target_sessions: 6_000,
        ..ServiceConfig::default()
    };
    let world = ServiceWorld::new(&cfg);
    let mut harness = ServiceHarness::with_bank(&world, &cfg, SlabBank::new());
    assert!(
        harness.run_until(cfg.target_sessions / 10),
        "service drained during warm-up"
    );
    let (allocs, frees) = measured(|| {
        assert!(
            harness.run_until(cfg.target_sessions),
            "service drained before reaching its session target"
        );
    });
    let report = harness.finish();
    assert_eq!(report.totals.completed, cfg.target_sessions);
    assert!(report.accounted(), "accounting broke: {:?}", report.totals);
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "service steady state must be allocation-free"
    );
}

/// The sharded mega harness at 10⁴ concurrent slots (1250 shards × 8
/// slots, per-shard `SlabBank`s with pre-seeded snapshot slots, one
/// global telemetry sink): after warm-up settles every shard's
/// free-list cursors, the remaining ninety percent of the fleet-wide
/// run must be literally (0 allocs, 0 frees) — the PR 6 slab machinery
/// carrying the PR 8 serving layer without a single steady-state heap
/// touch.
#[test]
fn mega_service_steady_state_is_zero_alloc() {
    let cfg = MegaServiceConfig {
        base: ServiceConfig {
            seed: 23,
            slots: 8,
            target_sessions: 12_000,
            window: 1 << 12,
            // Fleet-wide rate: two arrivals per step (each shard's
            // thinned stream draws gaps with mean 625 steps).
            arrivals: Arrivals::Poisson { mean_gap: 0.5 },
            crash_hazard: 1e-3,
            admission: Admission {
                max_inflight: 8,
                queue_capacity: 16,
                backoff_base: 32,
                backoff_cap: 1 << 10,
                max_retries: 4,
                waiting_capacity: 64,
            },
            ..ServiceConfig::default()
        },
        shards: 1250,
    };
    assert_eq!(cfg.total_slots(), 10_000);
    let world = MegaServiceWorld::new(&cfg);
    let mut harness = MegaServiceHarness::new(&world, &cfg);
    // Priming registers every slot's store&collect infrastructure up
    // front: at 10⁴ slots, lazily warmed slots keep being first-touched
    // deep into the run, which session-count warm-up cannot cover.
    harness.prime();
    assert!(
        harness.run_until(cfg.base.target_sessions / 10),
        "fleet drained during warm-up"
    );
    let (allocs, frees) = measured(|| {
        assert!(
            harness.run_until(cfg.base.target_sessions),
            "fleet drained before reaching its session target"
        );
    });
    let mega = harness.finish();
    assert!(mega.report.totals.completed >= cfg.base.target_sessions);
    assert!(mega.report.accounted(), "{:?}", mega.report.totals);
    assert!(mega.rolled_up(), "shard totals diverge from roll-up");
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "mega service steady state must be allocation-free"
    );
}
