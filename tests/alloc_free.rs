//! Proof that the pooled trial loop is allocation-free at steady state:
//! a counting global allocator wraps the system allocator, and after a
//! warm-up phase (which stretches every engine/pool buffer to capacity)
//! repeated `run_pool` trials must perform **zero** heap allocations and
//! zero frees.
//!
//! The workload is the bench's `majority_round` shape — `Majority`
//! renaming machines under a seeded random schedule — whose machines
//! reset fully in place. (Snapshot-family machines inherently allocate
//! their installed records; they are exercised by the determinism suite
//! instead.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use exclusive_selection::sim::policy::{RandomPolicy, RoundRobin};
use exclusive_selection::sim::{AlgoSet, StepEngine};
use exclusive_selection::{Majority, RegAlloc, RenameConfig};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the test thread arms this, strictly around the measured
    /// loop — allocations from harness/runtime threads (or from test
    /// scaffolding outside the window) must not trip the assertion.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

// SAFETY: delegates verbatim to the system allocator; the counters are
// plain relaxed atomics behind a const-initialized thread-local gate
// (no allocation on the TLS path).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if MEASURING.with(Cell::get) {
            FREES.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if MEASURING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn counts() -> (u64, u64) {
    (ALLOCS.load(Ordering::SeqCst), FREES.load(Ordering::SeqCst))
}

#[test]
fn steady_state_pooled_trials_allocate_nothing() {
    let cfg = RenameConfig::default();
    let k = 32usize;
    let mut alloc = RegAlloc::new();
    let algo = AlgoSet::Majority(Majority::new(&mut alloc, 1024, k, &cfg));
    let originals: Vec<u64> = (0..k).map(|i| (i * 1024 / k) as u64 + 1).collect();

    let mut engine = StepEngine::reusable(alloc.total());
    let mut pool = algo.pool(&originals);

    // Warm up: buffers grow to steady-state capacity here.
    for seed in 0..3u64 {
        let mut policy = RandomPolicy::new(seed);
        engine.run_pool(&mut policy, &mut pool);
    }

    // Steady state: machines reset in place, engine scratch and pool
    // buffers reused — the allocator must not be touched at all on this
    // thread while the window is armed.
    let before = counts();
    MEASURING.with(|m| m.set(true));
    for seed in 3..23u64 {
        let mut policy = RandomPolicy::new(seed);
        engine.run_pool(&mut policy, &mut pool);
        let mut fair = RoundRobin::new();
        engine.run_pool(&mut fair, &mut pool);
    }
    MEASURING.with(|m| m.set(false));
    let after = counts();

    assert_eq!(
        after.0 - before.0,
        0,
        "steady-state pooled trials performed heap allocations"
    );
    assert_eq!(
        after.1 - before.1,
        0,
        "steady-state pooled trials freed heap memory (hidden churn)"
    );

    // Sanity: the trials actually ran and named everyone.
    assert_eq!(pool.completed().count(), k);
}
