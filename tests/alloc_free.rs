//! Proof that the pooled trial loop is allocation-free at steady state:
//! a counting global allocator wraps the system allocator, and after a
//! warm-up phase (which stretches every engine/pool buffer to capacity)
//! repeated `run_pool` trials must perform **zero** heap allocations and
//! zero frees.
//!
//! The zero-assert workload is the bench's `majority_round` shape —
//! `Majority` renaming machines under a seeded random schedule — whose
//! machines reset fully in place.
//!
//! Snapshot-backed families (unbounded naming, the wait-free deposit)
//! cannot be literally zero-alloc: every snapshot update installs a
//! fresh copy-on-write `SnapRecord` `Arc` that concurrent readers share,
//! and a completed direct scan materializes its view — those are the
//! algorithm's *shared objects*, not trial scaffolding. For the deposit
//! family this file therefore proves the sharper property that matters
//! for pooling: steady-state trials allocate **exactly the same amount
//! every sweep** (no growth — the pool/engine scaffolding is silent),
//! and strictly less than the boxed-per-trial recipe on identical
//! trials.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use exclusive_selection::sim::policy::{RandomPolicy, RoundRobin};
use exclusive_selection::sim::{AlgoSet, MachinePool, SetOutput, StepEngine};
use exclusive_selection::{Majority, Pid, RegAlloc, RenameConfig, StepMachine};
use exsel_unbounded::{AltruisticDeposit, DepositOp};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the test thread arms this, strictly around the measured
    /// loop — allocations from harness/runtime threads (or from test
    /// scaffolding outside the window) must not trip the assertion.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

// SAFETY: delegates verbatim to the system allocator; the counters are
// plain relaxed atomics behind a const-initialized thread-local gate
// (no allocation on the TLS path).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if MEASURING.with(Cell::get) {
            FREES.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if MEASURING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn counts() -> (u64, u64) {
    (ALLOCS.load(Ordering::SeqCst), FREES.load(Ordering::SeqCst))
}

#[test]
fn steady_state_pooled_trials_allocate_nothing() {
    let cfg = RenameConfig::default();
    let k = 32usize;
    let mut alloc = RegAlloc::new();
    let algo = AlgoSet::Majority(Majority::new(&mut alloc, 1024, k, &cfg));
    let originals: Vec<u64> = (0..k).map(|i| (i * 1024 / k) as u64 + 1).collect();

    let mut engine = StepEngine::reusable(alloc.total());
    let mut pool = algo.pool(&originals);

    // Warm up: buffers grow to steady-state capacity here.
    for seed in 0..3u64 {
        let mut policy = RandomPolicy::new(seed);
        engine.run_pool(&mut policy, &mut pool);
    }

    // Steady state: machines reset in place, engine scratch and pool
    // buffers reused — the allocator must not be touched at all on this
    // thread while the window is armed.
    let (allocs, frees) = measured(|| {
        for seed in 3..23u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, &mut pool);
            let mut fair = RoundRobin::new();
            engine.run_pool(&mut fair, &mut pool);
        }
    });

    assert_eq!(
        allocs, 0,
        "steady-state pooled trials performed heap allocations"
    );
    assert_eq!(
        frees, 0,
        "steady-state pooled trials freed heap memory (hidden churn)"
    );

    // Sanity: the trials actually ran and named everyone.
    assert_eq!(pool.completed().count(), k);
}

/// Allocations and frees on this thread while running `f` with the
/// measuring window armed.
fn measured(f: impl FnOnce()) -> (u64, u64) {
    let before = counts();
    MEASURING.with(|m| m.set(true));
    f();
    MEASURING.with(|m| m.set(false));
    let after = counts();
    (after.0 - before.0, after.1 - before.1)
}

#[test]
fn steady_state_pooled_deposit_trials_allocate_only_the_shared_records() {
    const N: usize = 4;
    const ROUNDS: usize = 2;
    let mut alloc = RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, N, 1024);
    let regs = alloc.total();

    let mut engine = StepEngine::reusable(regs);
    let mut pool: MachinePool<DepositOp<'_>> = (0..N)
        .map(|p| repo.begin_deposit(Pid(p), p as u64 * 1000, ROUNDS))
        .collect();

    let sweep = |engine: &mut StepEngine, pool: &mut MachinePool<DepositOp<'_>>| {
        for seed in 0..6u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, pool);
        }
    };

    // Warm up: every buffer reaches steady-state capacity.
    sweep(&mut engine, &mut pool);

    // Two identical steady-state sweeps (same seeds ⇒ same schedules ⇒
    // same machine transitions): the allocation counts must match
    // exactly. Any pool/engine scaffolding churn — machine rebuilds,
    // buffer regrowth, leaked capacity — would show up as a difference
    // or as growth between the sweeps.
    let first = measured(|| sweep(&mut engine, &mut pool));
    let second = measured(|| sweep(&mut engine, &mut pool));
    assert_eq!(
        first, second,
        "pooled deposit steady state is not allocation-stable"
    );

    // And the pooled loop must beat boxed-per-trial construction on the
    // very same trials: the delta is the per-trial machine boxes plus
    // every AcquireOp/ScanOp/UpdateOp buffer the pool re-arms in place.
    let mut alloc = RegAlloc::new();
    let algo = AlgoSet::Deposit {
        repo: AltruisticDeposit::new(&mut alloc, N, 1024),
        rounds: ROUNDS,
        servers: 0,
    };
    let originals: Vec<u64> = (0..N as u64).map(|p| p * 1000).collect();
    let mut boxed_engine = StepEngine::reusable(alloc.total());
    // Warm the engine scratch so only per-trial costs differ.
    let mut warm = RoundRobin::new();
    boxed_engine.run_trial(
        &mut warm,
        originals
            .iter()
            .enumerate()
            .map(|(p, &o)| -> Box<dyn StepMachine<Output = SetOutput> + '_> {
                Box::new(algo.begin(Pid(p), o))
            })
            .collect(),
    );
    let (boxed_allocs, _) = measured(|| {
        for seed in 0..6u64 {
            let mut policy = RandomPolicy::new(seed);
            boxed_engine.run_trial(
                &mut policy,
                originals
                    .iter()
                    .enumerate()
                    .map(|(p, &o)| -> Box<dyn StepMachine<Output = SetOutput> + '_> {
                        Box::new(algo.begin(Pid(p), o))
                    })
                    .collect(),
            );
        }
    });
    assert!(
        first.0 < boxed_allocs,
        "pooled deposit trials ({}) do not allocate less than boxed trials ({boxed_allocs})",
        first.0
    );

    // Sanity: deposits happened and stayed exclusive on the last trial.
    let mut all: Vec<u64> = pool
        .machines()
        .iter()
        .flat_map(|m| m.deposits().iter().copied())
        .collect();
    all.sort_unstable();
    assert_eq!(all.len(), N * ROUNDS);
    all.dedup();
    assert_eq!(all.len(), N * ROUNDS, "duplicate deposit registers");
}
