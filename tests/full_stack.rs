//! End-to-end scenario across every layer: processes with arbitrary
//! original names rename adaptively, use their names to run a progress
//! board (store&collect), and log completions in the crash-tolerant
//! repository — under adversarial schedules and crashes, on the
//! deterministic simulator. This is the "downstream user" composition the
//! paper's introduction motivates.

use std::collections::BTreeSet;

use exclusive_selection::sim::policy::{CrashStorm, RandomPolicy};
use exclusive_selection::{
    AdaptiveRename, Crash, Pid, RegAlloc, Rename, RenameConfig, SelfishDeposit, SimBuilder,
    StoreCollect, StoreHandle,
};

struct Stack {
    renamer: AdaptiveRename,
    board: StoreCollect,
    log: SelfishDeposit,
    registers: usize,
}

fn build(n: usize) -> Stack {
    let cfg = RenameConfig::default();
    let mut alloc = RegAlloc::new();
    let renamer = AdaptiveRename::new(&mut alloc, n, &cfg);
    let board = StoreCollect::adaptive(&mut alloc, n, &cfg);
    let log = SelfishDeposit::new(&mut alloc, n, 128);
    Stack {
        renamer,
        board,
        log,
        registers: alloc.total(),
    }
}

#[derive(Debug)]
struct WorkerReport {
    name: u64,
    logged_at: u64,
    final_view_len: usize,
}

#[test]
fn rename_store_deposit_pipeline_under_storms() {
    let n = 4;
    for seed in 0..6u64 {
        let stack = build(n);
        let policy = CrashStorm::new(
            Box::new(RandomPolicy::new(seed)),
            seed ^ 0xBEEF,
            0.002,
            n - 1,
        )
        .protect([Pid(0)]);
        let outcome = SimBuilder::new(stack.registers, Box::new(policy)).run(n, |ctx| {
            let original = (ctx.pid().0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // 1. Acquire a small name.
            let name = match stack.renamer.rename(ctx, original)? {
                exclusive_selection::Outcome::Named(m) => m,
                exclusive_selection::Outcome::Failed => panic!("within capacity"),
            };
            // 2. Publish progress under the new name.
            let mut handle = StoreHandle::new();
            for pct in [50u64, 100] {
                stack
                    .board
                    .store(ctx, &mut handle, name, pct)
                    .map_err(|_| Crash)?;
            }
            // 3. Log completion durably.
            let mut dep = stack.log.depositor_state();
            let logged_at = stack.log.deposit(ctx, &mut dep, name)?;
            // 4. Read the board.
            let view = stack.board.collect(ctx).map_err(|_| Crash)?;
            Ok(WorkerReport {
                name,
                logged_at,
                final_view_len: view.len(),
            })
        });

        let reports: Vec<&WorkerReport> = outcome.completed().collect();
        assert!(
            !reports.is_empty(),
            "seed {seed}: protected worker must finish"
        );

        // Names exclusive and within the adaptive bound for contention n.
        let names: BTreeSet<u64> = reports.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), reports.len(), "seed {seed}: duplicate names");
        let lg_n = (n as f64).log2().floor() as u64;
        assert!(names.iter().all(|&m| m < 8 * n as u64 - lg_n));

        // Log registers exclusive.
        let slots: BTreeSet<u64> = reports.iter().map(|r| r.logged_at).collect();
        assert_eq!(slots.len(), reports.len(), "seed {seed}: log collision");

        // Every survivor's final collect saw at least itself.
        assert!(reports.iter().all(|r| r.final_view_len >= 1));
    }
}

#[test]
fn quiescent_composition_sees_everything() {
    let n = 3;
    let stack = build(n);
    let outcome = SimBuilder::new(stack.registers, Box::new(RandomPolicy::new(42))).run(n, |ctx| {
        let name = stack
            .renamer
            .rename(ctx, ctx.pid().0 as u64 + 1_000_000)?
            .expect_named();
        let mut handle = StoreHandle::new();
        stack
            .board
            .store(ctx, &mut handle, name, 100)
            .map_err(|_| Crash)?;
        Ok(name)
    });
    assert!(outcome.results.iter().all(Result::is_ok));
    // A fresh quiescent collect (same layout, post-run memory is gone —
    // verify via a second simulated run is not possible; instead the
    // per-process collects already asserted coverage in the storm test).
    let names: BTreeSet<u64> = outcome
        .results
        .iter()
        .map(|r| *r.as_ref().unwrap())
        .collect();
    assert_eq!(names.len(), n);
}

#[test]
fn layers_share_one_register_space_without_interference() {
    // The three layers were allocated from one RegAlloc: their banks are
    // disjoint by construction. Run all layers concurrently and verify no
    // layer corrupts another (names stay valid, board values stay valid,
    // log deposits persist).
    let n = 3;
    let stack = build(n);
    let outcome = SimBuilder::new(stack.registers, Box::new(RandomPolicy::new(7))).run(n, |ctx| {
        let name = stack
            .renamer
            .rename(ctx, (ctx.pid().0 as u64 + 1) * 77)?
            .expect_named();
        let mut handle = StoreHandle::new();
        let mut dep = stack.log.depositor_state();
        // Interleave layer operations aggressively.
        for round in 0..3u64 {
            stack
                .board
                .store(ctx, &mut handle, name, round)
                .map_err(|_| Crash)?;
            stack.log.deposit(ctx, &mut dep, name * 100 + round)?;
        }
        let view = stack.board.collect(ctx).map_err(|_| Crash)?;
        for &(owner, value) in &view {
            assert!(value < 3, "board corrupted: ({owner},{value})");
        }
        Ok(())
    });
    assert!(outcome.results.iter().all(Result::is_ok));
}
