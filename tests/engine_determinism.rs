//! Determinism regression across execution backends: identical policy +
//! seed must produce identical traces, step counts and results on the
//! thread-backed runner (`SimBuilder`) and the single-threaded
//! `StepEngine`. This is the contract that makes the engine a drop-in
//! replacement — schedules recorded on one backend replay on the other,
//! and seeds found by fast engine sweeps reproduce under threads.

use exclusive_selection::sim::policy::{CrashStorm, Policy, RandomPolicy, RoundRobin};
use exclusive_selection::sim::{SimBuilder, SimOutcome, StepEngine};
use exclusive_selection::{
    BasicRename, Majority, Outcome, Pid, RegAlloc, Rename, RenameConfig, StepMachine, StepRename,
};

/// Runs `k` contenders of `algo` on both backends under policies built by
/// `policy()` and returns the two outcomes (traces recorded).
fn both_backends<R: Rename + StepRename + Sync>(
    algo: &R,
    num_registers: usize,
    originals: &[u64],
    policy: impl Fn() -> Box<dyn Policy>,
) -> (SimOutcome<Option<u64>>, SimOutcome<Option<u64>>) {
    let threaded = SimBuilder::new(num_registers, policy())
        .record_trace(true)
        .run(originals.len(), |ctx| {
            algo.rename(ctx, originals[ctx.pid().0]).map(Outcome::name)
        });
    let engine = StepEngine::new(num_registers, policy())
        .record_trace(true)
        .run(
            originals
                .iter()
                .enumerate()
                .map(
                    |(p, &orig)| -> Box<dyn StepMachine<Output = Option<u64>> + '_> {
                        Box::new(algo.begin_rename(Pid(p), orig).map_output(Outcome::name))
                    },
                )
                .collect(),
        );
    (threaded, engine)
}

fn assert_identical(
    threaded: &SimOutcome<Option<u64>>,
    engine: &SimOutcome<Option<u64>>,
    label: &str,
) {
    assert_eq!(threaded.trace, engine.trace, "{label}: traces diverged");
    assert_eq!(
        threaded.steps, engine.steps,
        "{label}: step counts diverged"
    );
    assert_eq!(
        threaded.total_ops, engine.total_ops,
        "{label}: op totals diverged"
    );
    assert_eq!(
        threaded.crashed, engine.crashed,
        "{label}: crash sets diverged"
    );
    let names = |o: &SimOutcome<Option<u64>>| -> Vec<Option<u64>> {
        o.results.iter().map(|r| r.ok().flatten()).collect()
    };
    assert_eq!(names(threaded), names(engine), "{label}: names diverged");
}

#[test]
fn round_robin_identical_on_both_backends() {
    let cfg = RenameConfig::default();
    let mut alloc = RegAlloc::new();
    let algo = Majority::new(&mut alloc, 128, 4, &cfg);
    let originals = [1u64, 40, 77, 128];
    let (threaded, engine) = both_backends(&algo, alloc.total(), &originals, || {
        Box::new(RoundRobin::new())
    });
    assert_identical(&threaded, &engine, "round_robin");
}

#[test]
fn random_seeds_identical_on_both_backends() {
    let cfg = RenameConfig::default();
    let mut alloc = RegAlloc::new();
    let algo = BasicRename::new(&mut alloc, 256, 6, &cfg);
    let originals: Vec<u64> = (0..6u64).map(|i| i * 41 + 3).collect();
    for seed in 0..8 {
        let (threaded, engine) = both_backends(&algo, alloc.total(), &originals, || {
            Box::new(RandomPolicy::new(seed))
        });
        assert_identical(&threaded, &engine, &format!("random seed {seed}"));
    }
}

#[test]
fn crash_storms_identical_on_both_backends() {
    let cfg = RenameConfig::default();
    let mut alloc = RegAlloc::new();
    let algo = BasicRename::new(&mut alloc, 128, 5, &cfg);
    let originals: Vec<u64> = (0..5u64).map(|i| i * 23 + 7).collect();
    for seed in 0..6 {
        let (threaded, engine) = both_backends(&algo, alloc.total(), &originals, || {
            Box::new(CrashStorm::new(
                Box::new(RandomPolicy::new(seed)),
                !seed,
                0.05,
                3,
            ))
        });
        assert!(
            !threaded.crashed.is_empty() || threaded.trace == engine.trace,
            "seed {seed} produced no interesting run"
        );
        assert_identical(&threaded, &engine, &format!("storm seed {seed}"));
    }
}

#[test]
fn reused_engine_is_trace_identical_to_fresh_engine() {
    // The engine-reuse contract: the same policy + seed yields the
    // identical trace whether the engine is fresh or reused after
    // reset() — even with different register counts and unrelated
    // algorithms run in between.
    let cfg = RenameConfig::default();
    let mut alloc = RegAlloc::new();
    let algo = BasicRename::new(&mut alloc, 256, 6, &cfg);
    let originals: Vec<u64> = (0..6u64).map(|i| i * 41 + 3).collect();

    let machines = || {
        originals
            .iter()
            .enumerate()
            .map(
                |(p, &orig)| -> Box<dyn StepMachine<Output = Option<u64>> + '_> {
                    Box::new(algo.begin_rename(Pid(p), orig).map_output(Outcome::name))
                },
            )
            .collect()
    };

    let mut reused = StepEngine::reusable(alloc.total()).record_trace(true);
    // Dirty the engine's scratch with unrelated trials first: another
    // algorithm, another register count, other seeds.
    {
        let mut other_alloc = RegAlloc::new();
        let other = Majority::new(&mut other_alloc, 128, 4, &cfg);
        reused.set_registers(other_alloc.total());
        for seed in 0..3 {
            let mut warm: Box<dyn Policy> = Box::new(RandomPolicy::new(seed));
            reused.run_trial(
                warm.as_mut(),
                (0..4)
                    .map(|p| -> Box<dyn StepMachine<Output = Option<u64>> + '_> {
                        Box::new(
                            other
                                .begin_rename(Pid(p), p as u64 + 1)
                                .map_output(Outcome::name),
                        )
                    })
                    .collect(),
            );
        }
    }
    reused.set_registers(alloc.total());

    for seed in [0u64, 7, 1234] {
        let fresh_outcome = StepEngine::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
            .record_trace(true)
            .run(machines());
        let mut policy: Box<dyn Policy> = Box::new(RandomPolicy::new(seed));
        let reused_outcome = reused.run_trial(policy.as_mut(), machines());
        assert_eq!(
            fresh_outcome.trace, reused_outcome.trace,
            "seed {seed}: traces diverged between fresh and reused engines"
        );
        assert_eq!(fresh_outcome.steps, reused_outcome.steps, "seed {seed}");
        assert_eq!(
            fresh_outcome.total_ops, reused_outcome.total_ops,
            "seed {seed}"
        );
        let names = |o: &SimOutcome<Option<u64>>| -> Vec<Option<u64>> {
            o.results.iter().map(|r| r.ok().flatten()).collect()
        };
        assert_eq!(names(&fresh_outcome), names(&reused_outcome), "seed {seed}");
    }
}

#[test]
fn engine_seed_sweep_replays_on_threads() {
    // The intended workflow: sweep many seeds cheaply on the engine, then
    // reproduce a chosen one on the thread-backed runner. Pick the seed
    // with the worst step complexity and confirm the replay agrees.
    let cfg = RenameConfig::default();
    let mut alloc = RegAlloc::new();
    let algo = Majority::new(&mut alloc, 256, 6, &cfg);
    let originals: Vec<u64> = (0..6u64).map(|i| i * 31 + 1).collect();

    let mut worst = (0u64, 0u64); // (seed, max_steps)
    for seed in 0..50 {
        let outcome = StepEngine::new(alloc.total(), Box::new(RandomPolicy::new(seed))).run(
            originals
                .iter()
                .enumerate()
                .map(
                    |(p, &orig)| -> Box<dyn StepMachine<Output = Option<u64>> + '_> {
                        Box::new(algo.begin_rename(Pid(p), orig).map_output(Outcome::name))
                    },
                )
                .collect(),
        );
        let max = outcome.steps.iter().copied().max().unwrap_or(0);
        if max > worst.1 {
            worst = (seed, max);
        }
    }
    let (threaded, engine) = both_backends(&algo, alloc.total(), &originals, || {
        Box::new(RandomPolicy::new(worst.0))
    });
    assert_identical(&threaded, &engine, "worst-seed replay");
    assert_eq!(threaded.max_steps(), worst.1);
}
