//! The atomic-snapshot object under adversarial schedules: the
//! linearizability properties the renaming and repository layers rely on,
//! exercised on the deterministic simulator across many seeds — including
//! the borrowed-view path (a scanner adopting the embedded view of a
//! writer observed to move twice), which quiescent tests never reach.

use exclusive_selection::shm::Snapshot;
use exclusive_selection::sim::policy::{RandomPolicy, Scripted};
use exclusive_selection::{Pid, RegAlloc, SimBuilder, Word};

#[test]
fn views_totally_ordered_across_seeds() {
    const PROCS: usize = 3;
    const OPS: u64 = 8;
    for seed in 0..25 {
        let mut alloc = RegAlloc::new();
        let snap = Snapshot::new(&mut alloc, PROCS);
        let outcome =
            SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed))).run(PROCS, |ctx| {
                let slot = ctx.pid().0;
                let mut views = Vec::new();
                for i in 1..=OPS {
                    snap.update(ctx, slot, Word::Int(i))?;
                    let view = snap.scan(ctx)?;
                    views.push(
                        view.iter()
                            .map(|w| w.as_int().unwrap_or(0))
                            .collect::<Vec<u64>>(),
                    );
                }
                Ok(views)
            });
        let mut all: Vec<Vec<u64>> = outcome.completed().flatten().cloned().collect();
        all.sort();
        for pair in all.windows(2) {
            assert!(
                pair[0].iter().zip(&pair[1]).all(|(a, b)| a <= b),
                "seed {seed}: incomparable views {:?} vs {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}

#[test]
fn self_inclusion_under_adversarial_schedules() {
    const PROCS: usize = 3;
    for seed in 0..25 {
        let mut alloc = RegAlloc::new();
        let snap = Snapshot::new(&mut alloc, PROCS);
        let outcome =
            SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed))).run(PROCS, |ctx| {
                let slot = ctx.pid().0;
                for i in 1..=6u64 {
                    snap.update(ctx, slot, Word::Int(i))?;
                    let view = snap.scan(ctx)?;
                    let mine = view[slot].as_int().unwrap();
                    assert!(mine >= i, "scan missed own update {i}, saw {mine}");
                }
                Ok(())
            });
        assert!(outcome.results.iter().all(Result::is_ok));
    }
}

#[test]
fn borrowed_view_path_is_exercised_and_correct() {
    // Schedule: process 0 starts a scan (reads slot 0 of its first
    // collect), then process 1 performs two complete updates (each with
    // its own embedded scan), then process 0 continues: its collects see
    // slot 1's sequence number move twice, forcing the borrowed-view
    // return. The borrowed view must still be a valid snapshot (contain
    // process 1's first or second value, and be consistent).
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, 2);

    // Build the grant script: p1's solo update costs (2 reads collect) x2
    // + 1 own-read + 1 write = 6 ops... driven dynamically instead:
    // p0 gets 1 grant, then p1 runs 2 full updates (12 ops), then p0 runs.
    let mut script = vec![Pid(0)];
    script.extend(std::iter::repeat_n(Pid(1), 12));
    script.extend(std::iter::repeat_n(Pid(0), 64));

    let outcome = SimBuilder::new(alloc.total(), Box::new(Scripted::new(script))).run(2, |ctx| {
        if ctx.pid().0 == 0 {
            let view = snap.scan(ctx)?;
            Ok(view[1].as_int())
        } else {
            snap.update(ctx, 1, Word::Int(10))?;
            snap.update(ctx, 1, Word::Int(20))?;
            Ok(None)
        }
    });
    let scanned = outcome.results[0].as_ref().unwrap();
    // The scan ran concurrently with both updates: any of ⊥/10/20 is a
    // linearizable outcome, but the view must be well-formed (this test's
    // value is that the borrowed path executed without panicking and
    // returned a plausible component).
    assert!(
        matches!(scanned, None | Some(10) | Some(20)),
        "implausible scanned value {scanned:?}"
    );
}

#[test]
fn single_writer_discipline_is_per_slot_not_global() {
    // Different processes own different slots and may update concurrently
    // with scans everywhere: all components converge to the final values.
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, 4);
    let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(5))).run(4, |ctx| {
        let slot = ctx.pid().0;
        snap.update(ctx, slot, Word::Int(slot as u64 + 100))?;
        Ok(())
    });
    assert!(outcome.results.iter().all(Result::is_ok));
    // Quiescent scan (fresh run on same layout not possible — reuse via
    // threaded memory instead).
    let mem = exclusive_selection::ThreadedShm::new(alloc.total(), 5);
    for p in 0..4 {
        let ctx = exclusive_selection::Ctx::new(&mem, Pid(p));
        snap.update(ctx, p, Word::Int(p as u64 + 100)).unwrap();
    }
    let ctx = exclusive_selection::Ctx::new(&mem, Pid(4));
    let view = snap.scan(ctx).unwrap();
    for (i, w) in view.iter().enumerate() {
        assert_eq!(w.as_int(), Some(i as u64 + 100));
    }
}
