//! Integration: Store&Collect on the deterministic simulator — regularity
//! of collects under concurrency and crashes, in every knowledge setting.

use exclusive_selection::sim::policy::{CrashStorm, RandomPolicy, RoundRobin};
use exclusive_selection::{RegAlloc, RenameConfig, SimBuilder, StoreCollect, StoreHandle};

fn settings(n: usize, n_names: usize) -> Vec<(&'static str, StoreCollect, usize)> {
    let cfg = RenameConfig::default();
    let mut out = Vec::new();
    {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::known(&mut alloc, n, n_names, &cfg);
        out.push(("known", sc, alloc.total()));
    }
    {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::almost_adaptive(&mut alloc, n_names, n, &cfg);
        out.push(("almost_adaptive", sc, alloc.total()));
    }
    {
        let mut alloc = RegAlloc::new();
        let sc = StoreCollect::adaptive(&mut alloc, n, &cfg);
        out.push(("adaptive", sc, alloc.total()));
    }
    out
}

#[test]
fn quiescent_collect_is_complete_and_latest() {
    let n = 4;
    for (label, sc, regs) in settings(n, 64) {
        let outcome = SimBuilder::new(regs, Box::new(RoundRobin::new())).run(n, |ctx| {
            let mut h = StoreHandle::new();
            let orig = ctx.pid().0 as u64 + 1;
            for round in 0..3u64 {
                sc.store(ctx, &mut h, orig, round)
                    .map_err(|_| exclusive_selection::Crash)?;
            }
            // After everyone interleaved, collect sees one entry per
            // process with its latest value... eventually; here we only
            // check self-inclusion with the latest value.
            let view = sc.collect(ctx).map_err(|_| exclusive_selection::Crash)?;
            Ok(view)
        });
        for (pid, result) in outcome.results.iter().enumerate() {
            let view = result.as_ref().unwrap();
            let mine = view
                .iter()
                .find(|&&(o, _)| o == pid as u64 + 1)
                .unwrap_or_else(|| panic!("{label}: own entry missing from own collect"));
            assert_eq!(mine.1, 2, "{label}: collect missed own latest store");
            assert!(view.len() <= n, "{label}: more entries than processes");
        }
    }
}

#[test]
fn collects_respect_owner_uniqueness_under_random_schedules() {
    let n = 4;
    for (label, sc, regs) in settings(n, 64) {
        for seed in 0..6 {
            let outcome = SimBuilder::new(regs, Box::new(RandomPolicy::new(seed))).run(n, |ctx| {
                let mut h = StoreHandle::new();
                let orig = (ctx.pid().0 as u64 + 1) * 7;
                sc.store(ctx, &mut h, orig, ctx.pid().0 as u64)
                    .map_err(|_| exclusive_selection::Crash)?;
                sc.collect(ctx).map_err(|_| exclusive_selection::Crash)
            });
            for result in outcome.completed() {
                let owners: Vec<u64> = result.iter().map(|&(o, _)| o).collect();
                let mut dedup = owners.clone();
                dedup.dedup();
                assert_eq!(owners, dedup, "{label} seed {seed}: duplicate owner");
            }
        }
        // One (fresh) run per setting suffices per seed loop; re-running
        // the same instance across seeds is fine because each sim run gets
        // a fresh memory. (Registers are state, the object is layout.)
    }
}

#[test]
fn crashed_storers_do_not_corrupt_collects() {
    let n = 4;
    for (label, sc, regs) in settings(n, 64) {
        for seed in 0..4 {
            let policy = CrashStorm::new(Box::new(RandomPolicy::new(seed)), seed, 0.03, n - 1);
            let outcome = SimBuilder::new(regs, Box::new(policy)).run(n, |ctx| {
                let mut h = StoreHandle::new();
                let orig = (ctx.pid().0 as u64 + 1) * 3;
                for round in 0..2u64 {
                    sc.store(ctx, &mut h, orig, round)
                        .map_err(|_| exclusive_selection::Crash)?;
                }
                sc.collect(ctx).map_err(|_| exclusive_selection::Crash)
            });
            for view in outcome.completed() {
                // Values are only ever 0 or 1 (a crashed process's partial
                // store still wrote a valid value or nothing).
                for &(owner, value) in view {
                    assert!(value <= 1, "{label} seed {seed}: corrupt value");
                    assert!(owner % 3 == 0 && owner > 0, "{label}: corrupt owner");
                }
            }
        }
    }
}
