//! Property-based tests (proptest): the paper's safety invariants hold
//! for arbitrary contention levels, original-name layouts, schedule seeds
//! and crash budgets.

use std::collections::BTreeSet;

use exclusive_selection::sim::policy::{CrashStorm, RandomPolicy};
use exclusive_selection::{
    AdaptiveRename, BasicRename, MoirAnderson, RegAlloc, Rename, RenameConfig, SimBuilder,
};
use proptest::prelude::*;

/// Distinct original names in [1, n_names].
fn originals_strategy(k: usize, n_names: usize) -> impl Strategy<Value = Vec<u64>> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut set = BTreeSet::new();
        while set.len() < k {
            set.insert(rng.random_range(1..=n_names as u64));
        }
        let mut v: Vec<u64> = set.into_iter().collect();
        // Shuffle so pid order is unrelated to name order.
        for i in (1..v.len()).rev() {
            v.swap(i, rng.random_range(0..=i));
        }
        v
    })
}

fn run_basic(
    k: usize,
    n_names: usize,
    originals: &[u64],
    seed: u64,
    crash_budget: usize,
) -> (Vec<Option<u64>>, usize, u64) {
    let mut alloc = RegAlloc::new();
    let algo = BasicRename::new(&mut alloc, n_names, k, &RenameConfig::with_seed(seed));
    let bound = algo.name_bound();
    let policy = CrashStorm::new(Box::new(RandomPolicy::new(seed)), !seed, 0.02, crash_budget);
    let outcome = SimBuilder::new(alloc.total(), Box::new(policy)).run(originals.len(), |ctx| {
        algo.rename(ctx, originals[ctx.pid().0]).map(|o| o.name())
    });
    let crashed = outcome.crashed.len();
    (
        outcome
            .results
            .into_iter()
            .map(|r| r.ok().flatten())
            .collect(),
        crashed,
        bound,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Basic-Rename: exclusiveness, range and progress for arbitrary
    /// contention, name layout, schedule and crashes.
    #[test]
    fn basic_rename_invariants(
        k in 1usize..6,
        seed in any::<u64>(),
        crash_budget in 0usize..4,
        originals in originals_strategy(6, 64),
    ) {
        let originals = &originals[..k];
        let (names, crashed, bound) = run_basic(6, 64, originals, seed, crash_budget.min(k.saturating_sub(1)));
        let got: Vec<u64> = names.iter().flatten().copied().collect();
        let set: BTreeSet<u64> = got.iter().copied().collect();
        prop_assert_eq!(set.len(), got.len(), "duplicate names");
        prop_assert!(got.iter().all(|&m| (1..=bound).contains(&m)));
        prop_assert!(got.len() + crashed >= k, "a survivor was left unnamed");
    }

    /// Moir–Anderson under arbitrary overload: exclusiveness and range
    /// hold even when contention exceeds the grid capacity.
    #[test]
    fn moir_anderson_overload_safe(
        cap in 1usize..5,
        contenders in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut alloc = RegAlloc::new();
        let algo = MoirAnderson::new(&mut alloc, cap);
        let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
            .run(contenders, |ctx| {
                algo.rename(ctx, ctx.pid().0 as u64 + 1).map(|o| o.name())
            });
        let got: Vec<u64> = outcome.results.iter().filter_map(|r| r.as_ref().ok().copied().flatten()).collect();
        let set: BTreeSet<u64> = got.iter().copied().collect();
        prop_assert_eq!(set.len(), got.len());
        prop_assert!(got.iter().all(|&m| m <= algo.name_bound()));
        if contenders <= cap {
            prop_assert_eq!(got.len(), contenders, "everyone within capacity must stop");
        }
    }

    /// Adaptive-Rename: the 8k − lg k − 1 bound holds for every true
    /// contention under every schedule.
    #[test]
    fn adaptive_bound_holds(
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut alloc = RegAlloc::new();
        let algo = AdaptiveRename::new(&mut alloc, 8, &RenameConfig::default());
        let originals: Vec<u64> = (0..k as u64).map(|i| (i + 1).wrapping_mul(seed | 1)).collect();
        // Original names must be distinct; wrapping_mul with odd seed is a
        // bijection on u64, so they are.
        let outcome = SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed)))
            .run(k, |ctx| algo.rename(ctx, originals[ctx.pid().0]).map(|o| o.name()));
        let got: Vec<u64> = outcome.results.iter().filter_map(|r| r.as_ref().ok().copied().flatten()).collect();
        prop_assert_eq!(got.len(), k);
        let set: BTreeSet<u64> = got.iter().copied().collect();
        prop_assert_eq!(set.len(), k);
        let lg_k = (k as f64).log2().floor() as u64;
        prop_assert!(got.iter().all(|&m| m < 8 * k as u64 - lg_k));
    }
}
