//! Mega-scale service invariants: the sharded harness at 10⁴ concurrent
//! slots (1250 shards × 8 slots) under a 2·10⁻³ per-step crash hazard.
//! The paper's guarantee is scale-free — completed sessions hold
//! pairwise-exclusive tickets no matter how clients crash and re-enter —
//! and the admission layer must keep its books: every arrival completes,
//! is cleanly rejected, or is still in the system, and each shard's own
//! counters sum to the global roll-up.

use exclusive_selection::sim::service::mega::{
    MegaServiceConfig, MegaServiceHarness, MegaServiceWorld,
};
use exclusive_selection::sim::service::{Admission, Arrivals, ServiceConfig};
use std::collections::BTreeSet;

/// A 10⁴-slot fleet with a bounded client budget, pressure enough to
/// exercise queues and backoff, and a 2e-3 hazard. Bounded arrivals
/// keep the run drainable, so accounting can be checked as an exact
/// identity rather than an inequality.
fn mega_cfg(seed: u64, clients: u64) -> MegaServiceConfig {
    MegaServiceConfig {
        base: ServiceConfig {
            seed,
            slots: 8,
            target_sessions: 0,
            max_clients: clients,
            window: 1 << 12,
            arrivals: Arrivals::Poisson { mean_gap: 2.0 },
            crash_hazard: 2e-3,
            admission: Admission {
                max_inflight: 8,
                queue_capacity: 16,
                backoff_base: 32,
                backoff_cap: 1 << 10,
                max_retries: 4,
                waiting_capacity: 64,
            },
            ..ServiceConfig::default()
        },
        shards: 1250,
    }
}

#[test]
fn crash_storm_invariants_hold_at_ten_thousand_slots() {
    let cfg = mega_cfg(41, 6_000);
    assert_eq!(cfg.total_slots(), 10_000);
    let world = MegaServiceWorld::new(&cfg);
    let mega = MegaServiceHarness::new(&world, &cfg).run();
    let g = mega.report.totals;

    // The hazard actually fired and forced the re-entry path.
    assert!(g.crashes > 0, "2e-3 hazard never fired: {g:?}");
    assert!(g.reentries > 0, "no crashed client re-entered: {g:?}");

    // Global accounting: arrivals = completed + rejected + in_system,
    // and the bounded run drained completely.
    assert_eq!(g.arrivals, 6_000);
    assert!(mega.report.accounted(), "accounting broke: {g:?}");
    assert_eq!(mega.report.in_system, 0, "clients stranded: {g:?}");
    assert_eq!(g.completed + g.rejected, 6_000, "{g:?}");

    // Ticket exclusivity fleet-wide: every completed session holds a
    // distinct (shard-namespaced) ticket.
    let set: BTreeSet<u64> = mega.report.names.iter().copied().collect();
    assert_eq!(set.len() as u64, g.completed, "duplicate tickets at scale");

    // Per-shard accounting sums to the global roll-up, and — since the
    // fleet drained — closes shard by shard too.
    assert_eq!(mega.shard_totals.len(), 1250);
    assert!(mega.rolled_up(), "shard totals diverge from roll-up");
    for (s, t) in mega.shard_totals.iter().enumerate() {
        assert_eq!(
            t.arrivals,
            t.completed + t.rejected,
            "shard {s} books do not close: {t:?}"
        );
    }
}

/// Checker-on mega battery (`--features check`): the full 10⁴-slot
/// crash-storm fleet runs with one dynamic footprint checker per shard
/// (shards own disjoint register spaces, so per-shard checking is
/// exact) and must complete with zero ownership violations.
#[cfg(feature = "check")]
#[test]
fn ten_thousand_slot_fleet_stays_inside_declared_footprints() {
    use exclusive_selection::sim::AccessChecker;
    let cfg = mega_cfg(17, 4_000);
    assert_eq!(cfg.total_slots(), 10_000);
    let world = MegaServiceWorld::new(&cfg);
    let checkers: Vec<AccessChecker> = world
        .shard_worlds()
        .iter()
        .map(|w| {
            AccessChecker::for_instance(w, cfg.base.slots, w.num_registers())
                .expect("static pass accepts every shard world")
        })
        .collect();
    let mut mega = MegaServiceHarness::new(&world, &cfg);
    mega.install_checkers(checkers);
    mega.prime();
    let drained = mega.run_until(u64::MAX);
    assert!(!drained, "bounded arrivals must drain");
    assert!(mega.ops() > 0);
    assert_eq!(
        mega.checker_violations(),
        0,
        "mega fleet violated its footprints"
    );
    let report = mega.finish();
    assert!(report.report.accounted());
}

#[test]
fn fleet_windows_tile_the_clock_and_bound_the_gauges() {
    let mut cfg = mega_cfg(5, 3_000);
    // Window semantics don't need the full fleet; 16 shards keep the
    // per-shard pressure (and this suite's debug runtime) reasonable.
    cfg.shards = 16;
    cfg.base.arrivals = Arrivals::Poisson { mean_gap: 4.0 };
    let world = MegaServiceWorld::new(&cfg);
    let mega = MegaServiceHarness::new(&world, &cfg).run();
    assert!(!mega.report.windows.is_empty());
    let slots = cfg.total_slots() as u64;
    for (i, w) in mega.report.windows.iter().enumerate() {
        assert_eq!(w.window, i as u64);
        if i > 0 {
            assert_eq!(w.start, mega.report.windows[i - 1].end);
        }
        assert!(
            w.inflight <= slots,
            "window {i} reports {} in flight over {slots} slots",
            w.inflight
        );
    }
    // Window counter deltas sum to the whole-run totals.
    let sum = |f: fn(&exclusive_selection::sim::service::WindowRow) -> u64| {
        mega.report.windows.iter().map(f).sum::<u64>()
    };
    assert_eq!(sum(|w| w.arrivals), mega.report.totals.arrivals);
    assert_eq!(sum(|w| w.completed), mega.report.totals.completed);
    assert_eq!(sum(|w| w.crashes), mega.report.totals.crashes);
    assert_eq!(sum(|w| w.rejected), mega.report.totals.rejected);
}
