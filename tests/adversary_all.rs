//! Integration: the Theorem 6 adversary against every wait-free renaming
//! algorithm in the stack — exclusiveness must survive the staged
//! execution + culling, and the observed steps must dominate the bound.

use exclusive_selection::lowerbound::run_against;
use exclusive_selection::{
    AdaptiveRename, BasicRename, MoirAnderson, RegAlloc, Rename, RenameConfig,
};

#[test]
fn adversary_vs_moir_anderson() {
    let (k, n) = (4, 64);
    let mut alloc = RegAlloc::new();
    let algo = MoirAnderson::new(&mut alloc, k);
    let report = run_against(
        n,
        alloc.total(),
        k,
        algo.name_bound(),
        alloc.total() as u64,
        |ctx| Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name()),
    );
    assert!(report.exclusive);
    assert!(report.max_steps_named >= report.bound);
    assert!(report.named > 0);
}

#[test]
fn adversary_vs_basic_rename() {
    let (k, n) = (4, 64);
    let mut alloc = RegAlloc::new();
    let algo = BasicRename::new(&mut alloc, n, k, &RenameConfig::default());
    let report = run_against(
        n,
        alloc.total(),
        k,
        algo.name_bound(),
        alloc.total() as u64,
        |ctx| Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name()),
    );
    assert!(report.exclusive);
    assert!(report.max_steps_named >= report.bound);
}

#[test]
fn adversary_vs_adaptive_rename() {
    let (k, n) = (4, 32);
    let mut alloc = RegAlloc::new();
    let algo = AdaptiveRename::new(&mut alloc, k, &RenameConfig::default());
    let report = run_against(
        n,
        alloc.total(),
        k,
        algo.name_bound(),
        alloc.total() as u64,
        |ctx| Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name()),
    );
    assert!(report.exclusive);
    assert!(report.max_steps_named >= report.bound);
}

#[test]
fn pool_shrinks_within_pigeonhole_factor() {
    let (k, n) = (8, 128);
    let mut alloc = RegAlloc::new();
    let algo = MoirAnderson::new(&mut alloc, k);
    let r = alloc.total() as u64;
    let report = run_against(n, alloc.total(), k, algo.name_bound(), r, |ctx| {
        Ok(algo.rename(ctx, ctx.pid().0 as u64 + 1)?.name())
    });
    for w in report.pool_sizes.windows(2) {
        assert!(
            w[1] as u64 * 2 * r >= w[0] as u64,
            "pool shrank faster than the 2r pigeonhole factor: {:?}",
            report.pool_sizes
        );
    }
}
