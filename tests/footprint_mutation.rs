//! Mutation coverage for the dynamic footprint checker (`--features
//! check`): every machine family both *passes* the checker when healthy
//! and *fails* it when corrupted. For each family we (a) prove the
//! static non-interference pass accepts its declaration, (b) run it
//! clean under random adversaries with the checker installed and assert
//! zero violations, (c) inject a `RedirectWrite` mutant that steers the
//! victim's first write to a register outside (or owned outside) its
//! declared footprint and assert the checker reports exactly that
//! violation, and (d) hand the violating schedule to the ddmin shrinker
//! and assert the minimized trace still violates under replay.

#![cfg(feature = "check")]

use exclusive_selection::sim::policy::RandomPolicy;
use exclusive_selection::sim::{
    replay_pool, shrink_violation, AlgoSet, MachinePool, MachineSet, StepEngine, ViolationKind,
};
use exclusive_selection::{
    AdaptiveRename, AlmostAdaptive, BasicRename, EfficientRename, Majority, MoirAnderson, Pid,
    PolyLogRename, RegAlloc, RegId, RenameConfig, SnapshotRename, StoreCollect,
};
use exsel_shm::{Access, FootprintSpec, OpKind, Poll, ShmOp, StepMachine, Word};
use exsel_unbounded::{AltruisticDeposit, UnboundedNaming};

const K: usize = 4;
const N_NAMES: usize = 64;

/// One family instance plus the probe registers mutation needs: the
/// bank size (canary included) and a reserved canary register that no
/// footprint declares.
struct Family {
    label: &'static str,
    algo: AlgoSet,
    regs: usize,
    canary: RegId,
    originals: Vec<u64>,
}

/// Every algorithm family as an [`AlgoSet`] — the same table the pooled
/// determinism suite drives, with one undeclared canary register
/// appended to each instance's bank.
fn families(cfg: &RenameConfig) -> Vec<Family> {
    let originals: Vec<u64> = (0..K as u64).map(|i| i * 13 + 2).collect();
    let mut out = Vec::new();
    let mut with = |label: &'static str, build: &dyn Fn(&mut RegAlloc) -> AlgoSet| {
        let mut alloc = RegAlloc::new();
        let algo = build(&mut alloc);
        let canary = alloc.reserve(1).get(0);
        out.push(Family {
            label,
            algo,
            regs: alloc.total(),
            canary,
            originals: originals.clone(),
        });
    };
    with("moir-anderson", &|a| {
        AlgoSet::MoirAnderson(MoirAnderson::new(a, K))
    });
    with("majority", &|a| {
        AlgoSet::Majority(Majority::new(a, N_NAMES, K, cfg))
    });
    with("snapshot", &|a| {
        AlgoSet::SnapshotRename(SnapshotRename::new(a, K))
    });
    with("basic", &|a| {
        AlgoSet::Rename(Box::new(BasicRename::new(a, N_NAMES, K, cfg)))
    });
    with("polylog", &|a| {
        AlgoSet::Rename(Box::new(PolyLogRename::new(a, N_NAMES, K, cfg)))
    });
    with("almost-adaptive", &|a| {
        AlgoSet::Rename(Box::new(AlmostAdaptive::new(a, N_NAMES, 4 * K, cfg)))
    });
    with("adaptive", &|a| {
        AlgoSet::Rename(Box::new(AdaptiveRename::new(a, 4 * K, cfg)))
    });
    with("efficient", &|a| {
        AlgoSet::Rename(Box::new(EfficientRename::new(a, K, cfg)))
    });
    with("store-known", &|a| {
        AlgoSet::StoreCollect(StoreCollect::known(a, K, N_NAMES, cfg))
    });
    with("store-adaptive", &|a| {
        AlgoSet::StoreCollect(StoreCollect::adaptive(a, K, cfg))
    });
    with("naming", &|a| AlgoSet::Naming {
        naming: UnboundedNaming::new(a, K),
        rounds: 2,
    });
    with("deposit", &|a| AlgoSet::Deposit {
        repo: AltruisticDeposit::new(a, K, 512),
        rounds: 2,
        servers: 0,
    });
    out
}

/// A wrapper machine that redirects the *first* write of the mutated
/// pid to a fixed register, in both `op()` and `peek()` (the engine
/// asserts they agree). Everyone else, and every later operation of the
/// victim, passes through untouched — the minimal single-write
/// corruption the checker must catch.
struct RedirectWrite<M> {
    inner: M,
    mutant: Pid,
    to: RegId,
    armed: bool,
}

impl<M: StepMachine> StepMachine for RedirectWrite<M> {
    type Output = M::Output;

    fn op(&self) -> ShmOp {
        match self.inner.op() {
            ShmOp::Write(_, w) if self.armed => ShmOp::Write(self.to, w),
            op => op,
        }
    }

    fn peek(&self) -> (OpKind, RegId) {
        match self.inner.peek() {
            (OpKind::Write, _) if self.armed => (OpKind::Write, self.to),
            p => p,
        }
    }

    fn advance(&mut self, input: &Word) -> Poll<Self::Output> {
        if self.armed && matches!(self.inner.op(), ShmOp::Write(..)) {
            self.armed = false;
        }
        self.inner.advance(input)
    }

    fn reset(&mut self, pid: Pid) {
        self.inner.reset(pid);
        self.armed = pid == self.mutant;
    }
}

fn mutant_pool<'a>(
    family: &'a Family,
    victim: Pid,
    to: RegId,
) -> MachinePool<RedirectWrite<MachineSet<'a>>> {
    family
        .originals
        .iter()
        .enumerate()
        .map(|(p, &orig)| RedirectWrite {
            inner: family.algo.begin(Pid(p), orig),
            mutant: victim,
            to,
            armed: false,
        })
        .collect()
}

/// Runs one mutant trial, tolerating machine panics: a corrupted write
/// legitimately breaks the victim's *own* invariants (a snapshot
/// renamer whose token never lands expects it in its view), and the
/// checker has already observed the violating grant by the time the
/// machine unwinds. Returns whether the trial panicked.
fn run_mutant(
    engine: &mut StepEngine,
    pool: &mut MachinePool<RedirectWrite<MachineSet<'_>>>,
    seed: u64,
) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut policy = RandomPolicy::new(seed);
        engine.run_pool(&mut policy, pool);
    }))
    .is_err()
}

/// A mutant engine: trace recording on (for the shrinker), budgeted and
/// non-panicking — a corrupted write can legitimately livelock a
/// machine waiting on the value that went elsewhere.
fn mutant_engine(family: &Family) -> StepEngine {
    let mut engine = StepEngine::reusable(family.regs)
        .record_trace(true)
        .panic_on_budget(false)
        .max_total_ops(50_000);
    engine.install_checker(
        family
            .algo
            .checker(K, family.regs)
            .expect("static pass accepts every seed family"),
    );
    engine
}

/// The static non-interference pass accepts every seed family's
/// declaration — the tentpole's acceptance gate.
#[test]
fn static_pass_accepts_every_family() {
    let cfg = RenameConfig::default();
    for family in families(&cfg) {
        let checker = family.algo.checker(K, family.regs);
        assert!(
            checker.is_ok(),
            "{}: static pass rejected a healthy declaration: {}",
            family.label,
            checker.err().unwrap()
        );
        assert!(checker.unwrap().num_pids() == K, "{}", family.label);
    }
}

/// Healthy machines stay inside their declared footprints: checker-on
/// runs of every family under random adversaries observe every granted
/// operation and report zero violations.
#[test]
fn healthy_families_run_violation_free() {
    let cfg = RenameConfig::default();
    for family in families(&cfg) {
        let mut engine = StepEngine::reusable(family.regs);
        engine.install_checker(family.algo.checker(K, family.regs).unwrap());
        let mut pool: MachinePool<MachineSet<'_>> = family.algo.pool(&family.originals);
        for seed in 0..4u64 {
            let mut policy = RandomPolicy::new(seed);
            engine.run_pool(&mut policy, &mut pool);
            let m = engine.metrics();
            assert!(
                m.checker_ops > 0,
                "{}: checker observed nothing",
                family.label
            );
            assert_eq!(
                m.checker_violations,
                0,
                "{}: healthy run violated under seed {seed}: {:?}",
                family.label,
                engine.checker().unwrap().violations()
            );
        }
    }
}

/// Canary mutants: redirecting the victim's first write to a register
/// no footprint declares must surface as `UndeclaredWrite` by the
/// victim, in every family.
#[test]
fn undeclared_write_mutants_are_caught_in_every_family() {
    let cfg = RenameConfig::default();
    for family in families(&cfg) {
        let victim = Pid(1);
        let mut engine = mutant_engine(&family);
        let mut pool = mutant_pool(&family, victim, family.canary);
        run_mutant(&mut engine, &mut pool, 7);
        assert!(
            engine.checker().unwrap().trial_violations() > 0,
            "{}: canary write escaped the checker",
            family.label
        );
        let v = &engine.checker().unwrap().violations()[0];
        assert_eq!(v.pid, victim, "{}", family.label);
        assert_eq!(v.reg, family.canary, "{}", family.label);
        assert!(
            matches!(v.kind, ViolationKind::UndeclaredWrite),
            "{}: expected UndeclaredWrite, got {:?}",
            family.label,
            v.kind
        );
        assert!(v.op_index > 0, "{}", family.label);
    }
}

/// The first exclusively-owned register a foreign process declares, if
/// the family has single-writer extents at all.
fn neighbor_exclusive_reg(family: &Family, victim: Pid) -> Option<(Pid, RegId)> {
    let mut spec = FootprintSpec::default();
    for p in 0..K {
        if p == victim.0 {
            continue;
        }
        spec.clear();
        family.algo.footprint(Pid(p), &mut spec);
        if let Some(e) = spec
            .extents()
            .iter()
            .find(|e| e.access == Access::WriteExclusive)
        {
            return Some((Pid(p), e.range.get(0)));
        }
    }
    None
}

/// Ownership mutants: redirecting the victim's first write into a
/// *neighbor's* exclusively-owned register must surface as
/// `ForeignWrite` naming the true owner — in every family that declares
/// single-writer extents (snapshot slots, naming suites).
#[test]
fn foreign_write_mutants_name_the_owner() {
    let cfg = RenameConfig::default();
    let mut exercised = 0;
    for family in families(&cfg) {
        let victim = Pid(0);
        let Some((owner, target)) = neighbor_exclusive_reg(&family, victim) else {
            continue;
        };
        exercised += 1;
        let mut engine = mutant_engine(&family);
        let mut pool = mutant_pool(&family, victim, target);
        run_mutant(&mut engine, &mut pool, 11);
        assert!(
            engine.checker().unwrap().trial_violations() > 0,
            "{}: foreign write into {owner:?}'s register escaped the checker",
            family.label
        );
        let v = &engine.checker().unwrap().violations()[0];
        assert_eq!(v.pid, victim, "{}", family.label);
        assert_eq!(v.reg, target, "{}", family.label);
        match v.kind {
            ViolationKind::ForeignWrite { owner: o, .. } => {
                assert_eq!(o, owner, "{}: wrong owner in report", family.label);
            }
            ref k => panic!("{}: expected ForeignWrite, got {k:?}", family.label),
        }
    }
    // The single-writer families must actually be in the sweep.
    assert!(
        exercised >= 3,
        "only {exercised} families declare exclusive extents"
    );
}

/// Violating schedules shrink: the ddmin reducer hands back a
/// subsequence of the failing trace that still violates under replay,
/// deterministically, for a canary mutant of each shrink-friendly
/// family.
#[test]
fn violations_shrink_to_replayable_minima() {
    let cfg = RenameConfig::default();
    let mut exercised = 0;
    for family in families(&cfg) {
        let victim = Pid(1);
        let mut engine = mutant_engine(&family);
        let mut pool = mutant_pool(&family, victim, family.canary);
        if run_mutant(&mut engine, &mut pool, 3) {
            // The corruption breaks this family's own machine
            // invariants, so shrink replays would panic too; the canary
            // test above already proves detection for it.
            continue;
        }
        assert!(engine.metrics().checker_violations > 0, "{}", family.label);
        let failing: Vec<Pid> = engine
            .trace()
            .expect("trace recording on")
            .iter()
            .map(|op| op.pid)
            .collect();

        exercised += 1;
        let shrunk = shrink_violation(&mut engine, &mut pool, &failing);
        assert!(
            shrunk.len() <= failing.len(),
            "{}: shrinker grew the schedule",
            family.label
        );
        // The minimized schedule replays to a violation, and the
        // shrinker left the engine at exactly that replay.
        assert!(
            engine.metrics().checker_violations > 0,
            "{}: minimized schedule no longer violates",
            family.label
        );
        let again = shrink_violation(&mut engine, &mut pool, &failing);
        assert_eq!(
            shrunk, again,
            "{}: shrinking is not deterministic",
            family.label
        );
        replay_pool(&mut engine, &mut pool, &shrunk);
        assert!(
            engine.metrics().checker_violations > 0,
            "{}: shrunk schedule does not replay to a violation",
            family.label
        );
    }
    assert!(
        exercised >= 2,
        "only {exercised} families survive corruption far enough to shrink"
    );
}
