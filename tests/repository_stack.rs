//! Integration: the §5 repository/naming stack on the deterministic
//! simulator — persistence, exclusiveness and waste bounds under
//! adversarial schedules and crashes.

use std::collections::BTreeSet;

use exclusive_selection::sim::policy::{CrashStorm, RandomPolicy, RoundRobin};
use exclusive_selection::{
    AltruisticDeposit, Pid, RegAlloc, SelfishDeposit, SimBuilder, UnboundedNaming,
};

#[test]
fn selfish_deposits_exclusive_under_random_schedules() {
    let n = 3;
    let per = 5u64;
    for seed in 0..8 {
        let mut alloc = RegAlloc::new();
        let repo = SelfishDeposit::new(&mut alloc, n, 256);
        let outcome =
            SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed))).run(n, |ctx| {
                let mut st = repo.depositor_state();
                let mut regs = Vec::new();
                for i in 0..per {
                    regs.push(repo.deposit(ctx, &mut st, ctx.pid().0 as u64 * 100 + i)?);
                }
                Ok(regs)
            });
        let all: Vec<u64> = outcome.completed().flatten().copied().collect();
        let set: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "seed {seed}: register double-used");
        assert_eq!(all.len(), n * per as usize);
    }
}

#[test]
fn selfish_nonblocking_under_crash_storm() {
    // Non-blockingness in a finite run: with crashes bounded by n−1, the
    // surviving process still completes all its deposits.
    let n = 3;
    for seed in 0..5 {
        let mut alloc = RegAlloc::new();
        let repo = SelfishDeposit::new(&mut alloc, n, 256);
        let policy =
            CrashStorm::new(Box::new(RandomPolicy::new(seed)), seed, 0.02, n - 1).protect([Pid(0)]);
        let outcome = SimBuilder::new(alloc.total(), Box::new(policy)).run(n, |ctx| {
            let mut st = repo.depositor_state();
            for i in 0..4u64 {
                repo.deposit(ctx, &mut st, i)?;
            }
            Ok(())
        });
        assert!(
            outcome.results[0].is_ok(),
            "seed {seed}: protected process failed to finish"
        );
    }
}

#[test]
fn altruistic_deposits_exclusive_on_simulator() {
    let n = 3;
    let per = 3u64;
    for seed in 0..4 {
        let mut alloc = RegAlloc::new();
        let repo = AltruisticDeposit::new(&mut alloc, n, 512);
        let outcome =
            SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed))).run(n, |ctx| {
                let mut st = repo.depositor_state(ctx.pid());
                let mut regs = Vec::new();
                for i in 0..per {
                    regs.push(repo.deposit(ctx, &mut st, i)?);
                }
                Ok(regs)
            });
        let all: Vec<u64> = outcome.completed().flatten().copied().collect();
        let set: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "seed {seed}: register double-used");
    }
}

#[test]
fn unbounded_naming_exclusive_across_processes_and_time() {
    let n = 3;
    let per = 6u64;
    for seed in 0..6 {
        let mut alloc = RegAlloc::new();
        let naming = UnboundedNaming::new(&mut alloc, n);
        let outcome =
            SimBuilder::new(alloc.total(), Box::new(RandomPolicy::new(seed))).run(n, |ctx| {
                let mut st = naming.namer_state();
                let mut names = Vec::new();
                for _ in 0..per {
                    names.push(naming.acquire(ctx, &mut st)?);
                }
                Ok(names)
            });
        let all: Vec<u64> = outcome.completed().flatten().copied().collect();
        let set: BTreeSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "seed {seed}: duplicate name");
        // Theorem 10 quality: skipped integers below the frontier stay
        // within n−1 in crash-free runs.
        let frontier = *all.iter().max().unwrap();
        let skipped = (1..=frontier).filter(|i| !set.contains(i)).count();
        assert!(skipped < n, "seed {seed}: {skipped} integers skipped");
    }
}

#[test]
fn fair_schedule_round_trips() {
    let n = 2;
    let mut alloc = RegAlloc::new();
    let repo = SelfishDeposit::new(&mut alloc, n, 64);
    let outcome = SimBuilder::new(alloc.total(), Box::new(RoundRobin::new())).run(n, |ctx| {
        let mut st = repo.depositor_state();
        repo.deposit(ctx, &mut st, ctx.pid().0 as u64)
    });
    let regs: Vec<u64> = outcome.completed().copied().collect();
    assert_eq!(regs.len(), 2);
    assert_ne!(regs[0], regs[1]);
}
