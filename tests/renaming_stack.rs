//! Cross-crate integration: every renaming algorithm in the stack, run on
//! the deterministic simulator under fair, random, solo and crash-storm
//! schedules. The invariants checked here are the paper's specification:
//! exclusiveness always; progress (everyone named) whenever contention is
//! within capacity; wait-freedom (a solo-scheduled process completes).

use std::collections::BTreeSet;

use exclusive_selection::sim::policy::{CrashStorm, Policy, RandomPolicy, RoundRobin, Solo};
use exclusive_selection::{
    AdaptiveRename, AlmostAdaptive, BasicRename, EfficientRename, MoirAnderson, Pid, PolyLogRename,
    RegAlloc, Rename, RenameConfig, SimBuilder, SnapshotRename,
};

type AlgoFactory = Box<dyn Fn(&mut RegAlloc) -> Box<dyn Rename + Send> + Sync>;

fn stack(k: usize, n_names: usize) -> Vec<(&'static str, AlgoFactory)> {
    let cfg = RenameConfig::default();
    let c1 = cfg.clone();
    let c2 = cfg.clone();
    let c3 = cfg.clone();
    let c4 = cfg.clone();
    vec![
        (
            "moir_anderson",
            Box::new(move |a: &mut RegAlloc| Box::new(MoirAnderson::new(a, k)) as _),
        ),
        (
            "basic",
            Box::new(move |a: &mut RegAlloc| Box::new(BasicRename::new(a, n_names, k, &c1)) as _),
        ),
        (
            "polylog",
            Box::new(move |a: &mut RegAlloc| Box::new(PolyLogRename::new(a, n_names, k, &c2)) as _),
        ),
        (
            "efficient",
            Box::new(move |a: &mut RegAlloc| Box::new(EfficientRename::new(a, k, &c3)) as _),
        ),
        (
            "almost_adaptive",
            Box::new(move |a: &mut RegAlloc| {
                Box::new(AlmostAdaptive::new(a, n_names, k, &c4)) as _
            }),
        ),
        (
            "adaptive",
            Box::new(move |a: &mut RegAlloc| {
                Box::new(AdaptiveRename::new(a, k, &RenameConfig::default())) as _
            }),
        ),
        (
            "snapshot_baseline",
            Box::new(move |a: &mut RegAlloc| Box::new(SnapshotRename::new(a, k)) as _),
        ),
    ]
}

fn run_with_policy(
    factory: &AlgoFactory,
    k: usize,
    n_names: usize,
    policy: Box<dyn Policy>,
) -> (Vec<Option<u64>>, usize) {
    let mut alloc = RegAlloc::new();
    let algo = factory(&mut alloc);
    let originals: Vec<u64> = (0..k).map(|i| (i * n_names / k) as u64 + 1).collect();
    let outcome = SimBuilder::new(alloc.total(), policy).run(k, |ctx| {
        algo.rename(ctx, originals[ctx.pid().0]).map(|o| o.name())
    });
    let crashed = outcome.crashed.len();
    (
        outcome
            .results
            .into_iter()
            .map(|r| r.ok().flatten())
            .collect(),
        crashed,
    )
}

fn assert_exclusive(names: &[Option<u64>], label: &str) {
    let got: Vec<u64> = names.iter().flatten().copied().collect();
    let set: BTreeSet<u64> = got.iter().copied().collect();
    assert_eq!(set.len(), got.len(), "{label}: duplicate names {got:?}");
}

#[test]
fn fair_schedule_names_everyone() {
    let (k, n_names) = (4, 64);
    for (label, factory) in stack(k, n_names) {
        let (names, _) = run_with_policy(&factory, k, n_names, Box::new(RoundRobin::new()));
        assert_exclusive(&names, label);
        assert_eq!(
            names.iter().flatten().count(),
            k,
            "{label}: not everyone named under fair schedule"
        );
    }
}

#[test]
fn random_schedules_preserve_exclusiveness_and_progress() {
    let (k, n_names) = (4, 64);
    for (label, factory) in stack(k, n_names) {
        for seed in 0..10 {
            let (names, _) =
                run_with_policy(&factory, k, n_names, Box::new(RandomPolicy::new(seed)));
            assert_exclusive(&names, label);
            assert_eq!(names.iter().flatten().count(), k, "{label} seed {seed}");
        }
    }
}

#[test]
fn solo_schedule_is_wait_free() {
    // The hero is scheduled to completion while everyone else is frozen:
    // wait-freedom demands it still gets a name.
    let (k, n_names) = (4, 64);
    for (label, factory) in stack(k, n_names) {
        let (names, _) = run_with_policy(&factory, k, n_names, Box::new(Solo::new(Pid(2))));
        assert_exclusive(&names, label);
        assert!(
            names[2].is_some(),
            "{label}: solo-scheduled process failed to rename"
        );
    }
}

#[test]
fn crash_storms_never_violate_exclusiveness() {
    let (k, n_names) = (4, 64);
    for (label, factory) in stack(k, n_names) {
        for seed in 0..6 {
            let policy = CrashStorm::new(Box::new(RandomPolicy::new(seed)), seed, 0.05, k - 1);
            let (names, crashed) = run_with_policy(&factory, k, n_names, Box::new(policy));
            assert_exclusive(&names, label);
            assert!(
                names.iter().flatten().count() + crashed >= k,
                "{label} seed {seed}: a survivor was left unnamed"
            );
        }
    }
}

#[test]
fn name_ranges_respected_under_all_seeds() {
    let (k, n_names) = (4, 64);
    for (label, factory) in stack(k, n_names) {
        let mut alloc = RegAlloc::new();
        let bound = factory(&mut alloc).name_bound();
        for seed in 20..25 {
            let (names, _) =
                run_with_policy(&factory, k, n_names, Box::new(RandomPolicy::new(seed)));
            for name in names.iter().flatten() {
                assert!(
                    (1..=bound).contains(name),
                    "{label}: name {name} outside [1, {bound}]"
                );
            }
        }
    }
}
