//! Crash-semantics property coverage: crashing any single process
//! mid-rename — in any of the 8 renamers, at any point of its execution,
//! under any seeded schedule — must leave the survivors deciding unique
//! names, and (for every algorithm whose guarantee is total) leave no
//! survivor unnamed. Runs on the step-machine engine via `StepRename`,
//! with the crash placed by `CrashAtStep` at an exact local step of the
//! victim.

use exclusive_selection::sim::policy::{CrashAtStep, Policy, RandomPolicy};
use exclusive_selection::sim::StepEngine;
use exclusive_selection::{
    AdaptiveRename, AlmostAdaptive, BasicRename, EfficientRename, Majority, MoirAnderson, Outcome,
    Pid, PolyLogRename, RegAlloc, RenameConfig, SnapshotRename, StepMachine, StepRename,
};
use proptest::prelude::*;

const K: usize = 6;
const N_NAMES: usize = 256;

/// Builds renamer number `idx` (all 8 of the stack's `StepRename`
/// implementations) and reports whether it guarantees a name for every
/// surviving contender (`Majority` only promises half). Mirrors
/// `AlgoSpec` in `crates/bench/src/scenario.rs` (this root test crate
/// cannot depend on exsel-bench): when a renamer is added there, extend
/// this table and the `0..8` strategy range below.
fn build(idx: usize, alloc: &mut RegAlloc, cfg: &RenameConfig) -> (Box<dyn StepRename>, bool) {
    match idx {
        0 => (Box::new(MoirAnderson::new(alloc, K)), true),
        1 => (Box::new(EfficientRename::new(alloc, K, cfg)), true),
        2 => (Box::new(SnapshotRename::new(alloc, K)), true),
        3 => (Box::new(BasicRename::new(alloc, N_NAMES, K, cfg)), true),
        4 => (Box::new(PolyLogRename::new(alloc, N_NAMES, K, cfg)), true),
        5 => (
            Box::new(AlmostAdaptive::new(alloc, N_NAMES, 2 * K, cfg)),
            true,
        ),
        6 => (Box::new(AdaptiveRename::new(alloc, 2 * K, cfg)), true),
        7 => (Box::new(Majority::new(alloc, N_NAMES, K, cfg)), false),
        _ => unreachable!("8 renamers"),
    }
}

/// One adversarial execution: `victim` is crashed the moment it reaches
/// local step `crash_step`; everyone else runs under the seeded random
/// schedule. Returns `(names, crashed_pids)`.
fn run_with_crash(
    algo: &dyn StepRename,
    num_registers: usize,
    victim: usize,
    crash_step: u64,
    seed: u64,
) -> (Vec<Option<u64>>, Vec<Pid>) {
    let mut engine = StepEngine::reusable(num_registers);
    let mut policy: Box<dyn Policy> = Box::new(CrashAtStep::new(
        Box::new(RandomPolicy::new(seed)),
        Pid(victim),
        crash_step,
    ));
    let outcome = engine.run_trial(
        policy.as_mut(),
        (0..K)
            .map(|p| -> Box<dyn StepMachine<Output = Option<u64>> + '_> {
                Box::new(
                    algo.begin_rename(Pid(p), (p * N_NAMES / K) as u64 + 1)
                        .map_output(Outcome::name),
                )
            })
            .collect(),
    );
    (
        outcome.results.iter().map(|r| r.ok().flatten()).collect(),
        outcome.crashed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn single_crash_mid_rename_leaves_survivors_exclusive(
        algo_idx in 0..8usize,
        victim in 0..K,
        crash_step in 0u64..48,
        seed in 0u64..10_000,
    ) {
        let cfg = RenameConfig::default();
        let mut alloc = RegAlloc::new();
        let (algo, names_all) = build(algo_idx, &mut alloc, &cfg);
        let (names, crashed) =
            run_with_crash(algo.as_ref(), alloc.total(), victim, crash_step, seed);

        // Exclusiveness among everyone who decided.
        let decided: Vec<u64> = names.iter().flatten().copied().collect();
        let unique: std::collections::BTreeSet<u64> = decided.iter().copied().collect();
        prop_assert_eq!(
            unique.len(),
            decided.len(),
            "duplicate names from renamer {} under crash of {} at step {}: {:?}",
            algo_idx,
            victim,
            crash_step,
            names
        );

        // At most the one victim crashed, and it decided nothing.
        prop_assert!(crashed.len() <= 1);
        if let Some(pid) = crashed.first() {
            prop_assert_eq!(pid.0, victim);
            prop_assert!(names[victim].is_none());
        }

        // Wait-freedom under the crash: every survivor decided a name
        // (for the renamers whose guarantee is total).
        if names_all {
            for (pid, name) in names.iter().enumerate() {
                if !crashed.iter().any(|c| c.0 == pid) {
                    prop_assert!(
                        name.is_some(),
                        "renamer {} left survivor {} unnamed (victim {}, step {}, seed {})",
                        algo_idx,
                        pid,
                        victim,
                        crash_step,
                        seed
                    );
                }
            }
        }
    }
}

/// Deterministic exhaustive sweep at one tight spot: every renamer ×
/// every victim, crash placed inside the victim's first few operations —
/// the window where reservations and announcements are half-done.
#[test]
fn every_renamer_survives_every_single_victim() {
    let cfg = RenameConfig::default();
    for algo_idx in 0..8 {
        for victim in 0..K {
            for crash_step in [1u64, 3, 7] {
                let mut alloc = RegAlloc::new();
                let (algo, names_all) = build(algo_idx, &mut alloc, &cfg);
                let (names, crashed) =
                    run_with_crash(algo.as_ref(), alloc.total(), victim, crash_step, 42);
                let decided: Vec<u64> = names.iter().flatten().copied().collect();
                let unique: std::collections::BTreeSet<u64> = decided.iter().copied().collect();
                assert_eq!(unique.len(), decided.len(), "renamer {algo_idx}");
                // The victim may legitimately outrun the crash point; if
                // the crash fired, it hit exactly the victim.
                if crashed.is_empty() {
                    assert!(names[victim].is_some(), "renamer {algo_idx}");
                } else {
                    assert_eq!(crashed, vec![Pid(victim)], "renamer {algo_idx}");
                }
                if names_all {
                    assert_eq!(
                        decided.len(),
                        K - crashed.len(),
                        "renamer {algo_idx}: survivors unnamed after crashing {victim} at {crash_step}"
                    );
                }
            }
        }
    }
}
