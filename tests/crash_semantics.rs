//! Crash-semantics property coverage: crashing any single process
//! mid-rename — in any of the 8 renamers, at any point of its execution,
//! under any seeded schedule — must leave the survivors deciding unique
//! names, and (for every algorithm whose guarantee is total) leave no
//! survivor unnamed. Runs on the step-machine engine via `StepRename`,
//! with the crash placed by `CrashAtStep` at an exact local step of the
//! victim.

use exclusive_selection::sim::policy::{CrashAtStep, Policy, RandomPolicy};
use exclusive_selection::sim::StepEngine;
use exclusive_selection::{
    AdaptiveRename, AlmostAdaptive, BasicRename, EfficientRename, Majority, MoirAnderson, Outcome,
    Pid, PolyLogRename, RegAlloc, RenameConfig, SnapshotRename, StepMachine, StepRename,
};
use proptest::prelude::*;

const K: usize = 6;
const N_NAMES: usize = 256;

/// Builds renamer number `idx` (all 8 of the stack's `StepRename`
/// implementations) and reports whether it guarantees a name for every
/// surviving contender (`Majority` only promises half). Mirrors
/// `AlgoSpec` in `crates/bench/src/scenario.rs` (this root test crate
/// cannot depend on exsel-bench): when a renamer is added there, extend
/// this table and the `0..8` strategy range below.
fn build(idx: usize, alloc: &mut RegAlloc, cfg: &RenameConfig) -> (Box<dyn StepRename>, bool) {
    match idx {
        0 => (Box::new(MoirAnderson::new(alloc, K)), true),
        1 => (Box::new(EfficientRename::new(alloc, K, cfg)), true),
        2 => (Box::new(SnapshotRename::new(alloc, K)), true),
        3 => (Box::new(BasicRename::new(alloc, N_NAMES, K, cfg)), true),
        4 => (Box::new(PolyLogRename::new(alloc, N_NAMES, K, cfg)), true),
        5 => (
            Box::new(AlmostAdaptive::new(alloc, N_NAMES, 2 * K, cfg)),
            true,
        ),
        6 => (Box::new(AdaptiveRename::new(alloc, 2 * K, cfg)), true),
        7 => (Box::new(Majority::new(alloc, N_NAMES, K, cfg)), false),
        _ => unreachable!("8 renamers"),
    }
}

/// One adversarial execution: `victim` is crashed the moment it reaches
/// local step `crash_step`; everyone else runs under the seeded random
/// schedule. Returns `(names, crashed_pids)`.
fn run_with_crash(
    algo: &dyn StepRename,
    num_registers: usize,
    victim: usize,
    crash_step: u64,
    seed: u64,
) -> (Vec<Option<u64>>, Vec<Pid>) {
    let mut engine = StepEngine::reusable(num_registers);
    let mut policy: Box<dyn Policy> = Box::new(CrashAtStep::new(
        Box::new(RandomPolicy::new(seed)),
        Pid(victim),
        crash_step,
    ));
    let outcome = engine.run_trial(
        policy.as_mut(),
        (0..K)
            .map(|p| -> Box<dyn StepMachine<Output = Option<u64>> + '_> {
                Box::new(
                    algo.begin_rename(Pid(p), (p * N_NAMES / K) as u64 + 1)
                        .map_output(Outcome::name),
                )
            })
            .collect(),
    );
    (
        outcome.results.iter().map(|r| r.ok().flatten()).collect(),
        outcome.crashed,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn single_crash_mid_rename_leaves_survivors_exclusive(
        algo_idx in 0..8usize,
        victim in 0..K,
        crash_step in 0u64..48,
        seed in 0u64..10_000,
    ) {
        let cfg = RenameConfig::default();
        let mut alloc = RegAlloc::new();
        let (algo, names_all) = build(algo_idx, &mut alloc, &cfg);
        let (names, crashed) =
            run_with_crash(algo.as_ref(), alloc.total(), victim, crash_step, seed);

        // Exclusiveness among everyone who decided.
        let decided: Vec<u64> = names.iter().flatten().copied().collect();
        let unique: std::collections::BTreeSet<u64> = decided.iter().copied().collect();
        prop_assert_eq!(
            unique.len(),
            decided.len(),
            "duplicate names from renamer {} under crash of {} at step {}: {:?}",
            algo_idx,
            victim,
            crash_step,
            names
        );

        // At most the one victim crashed, and it decided nothing.
        prop_assert!(crashed.len() <= 1);
        if let Some(pid) = crashed.first() {
            prop_assert_eq!(pid.0, victim);
            prop_assert!(names[victim].is_none());
        }

        // Wait-freedom under the crash: every survivor decided a name
        // (for the renamers whose guarantee is total).
        if names_all {
            for (pid, name) in names.iter().enumerate() {
                if !crashed.iter().any(|c| c.0 == pid) {
                    prop_assert!(
                        name.is_some(),
                        "renamer {} left survivor {} unnamed (victim {}, step {}, seed {})",
                        algo_idx,
                        pid,
                        victim,
                        crash_step,
                        seed
                    );
                }
            }
        }
    }
}

/// Deterministic exhaustive sweep at one tight spot: every renamer ×
/// every victim, crash placed inside the victim's first few operations —
/// the window where reservations and announcements are half-done.
#[test]
fn every_renamer_survives_every_single_victim() {
    let cfg = RenameConfig::default();
    for algo_idx in 0..8 {
        for victim in 0..K {
            for crash_step in [1u64, 3, 7] {
                let mut alloc = RegAlloc::new();
                let (algo, names_all) = build(algo_idx, &mut alloc, &cfg);
                let (names, crashed) =
                    run_with_crash(algo.as_ref(), alloc.total(), victim, crash_step, 42);
                let decided: Vec<u64> = names.iter().flatten().copied().collect();
                let unique: std::collections::BTreeSet<u64> = decided.iter().copied().collect();
                assert_eq!(unique.len(), decided.len(), "renamer {algo_idx}");
                // The victim may legitimately outrun the crash point; if
                // the crash fired, it hit exactly the victim.
                if crashed.is_empty() {
                    assert!(names[victim].is_some(), "renamer {algo_idx}");
                } else {
                    assert_eq!(crashed, vec![Pid(victim)], "renamer {algo_idx}");
                }
                if names_all {
                    assert_eq!(
                        decided.len(),
                        K - crashed.len(),
                        "renamer {algo_idx}: survivors unnamed after crashing {victim} at {crash_step}"
                    );
                }
            }
        }
    }
}

/// Service-harness semantics under injected crash storms: the open-loop
/// session layer (`sim::service`) must preserve the paper's exclusivity
/// guarantee end to end — every *completed* session holds a distinct
/// ticket no matter how clients crash, re-enter, back off or get shed —
/// and admission control must account for every client that ever
/// arrived: once bounded arrivals drain, each one either completed or
/// was cleanly rejected, with nobody left in the system.
mod service_semantics {
    use exclusive_selection::sim::service::mega::{
        MegaServiceConfig, MegaServiceHarness, MegaServiceWorld,
    };
    use exclusive_selection::sim::service::{
        Admission, Arrivals, ServiceConfig, ServiceHarness, ServiceWorld,
    };
    use proptest::prelude::*;

    /// A randomized but always-drainable configuration: bounded
    /// arrivals, a horizon far past any plausible drain point, and a
    /// cap on backoff so rejection verdicts arrive quickly.
    #[allow(clippy::too_many_arguments)]
    fn storm_cfg(
        seed: u64,
        slots: usize,
        clients: u64,
        mean_gap: f64,
        hazard: f64,
        max_inflight: usize,
        queue_capacity: usize,
        waiting_capacity: usize,
    ) -> ServiceConfig {
        ServiceConfig {
            seed,
            slots,
            target_sessions: 0,
            max_clients: clients,
            window: 1 << 12,
            arrivals: Arrivals::Poisson { mean_gap },
            crash_hazard: hazard,
            admission: Admission {
                max_inflight: max_inflight.min(slots),
                queue_capacity,
                backoff_base: 32,
                backoff_cap: 1 << 10,
                max_retries: 4,
                waiting_capacity,
            },
            ..ServiceConfig::default()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Crash-storm exclusivity plus full accounting, across random
        /// service shapes: slot counts, arrival pressure (down to
        /// overload), hazards up to 1% per granted step, and tight
        /// admission bounds.
        #[test]
        fn crashy_sessions_stay_exclusive_and_accounted(
            seed in 0u64..10_000,
            slots in 2usize..6,
            clients in 40u64..160,
            mean_gap in 2.0f64..400.0,
            hazard in 0.0f64..0.01,
            max_inflight in 1usize..6,
            queue_capacity in 0usize..6,
            waiting_capacity in 1usize..32,
        ) {
            let cfg = storm_cfg(
                seed, slots, clients, mean_gap, hazard,
                max_inflight, queue_capacity, waiting_capacity,
            );
            let world = ServiceWorld::new(&cfg);
            let report = ServiceHarness::new(&world, &cfg).run();

            // Every client is accounted for, and the drain is total:
            // nobody is left in flight, queued, or waiting in backoff.
            prop_assert_eq!(report.totals.arrivals, clients);
            prop_assert!(report.accounted(), "accounting broke: {:?}", report.totals);
            prop_assert_eq!(
                report.in_system, 0,
                "clients stranded after drain: {:?}", report.totals
            );
            prop_assert_eq!(
                report.totals.completed + report.totals.rejected,
                clients,
                "shed/retried clients neither completed nor rejected: {:?}",
                report.totals
            );

            // Ticket exclusivity over completed sessions, crash storms
            // and re-entries notwithstanding.
            let mut names = report.names.clone();
            names.sort_unstable();
            let before = names.len() as u64;
            names.dedup();
            prop_assert_eq!(before, report.totals.completed);
            prop_assert_eq!(
                names.len() as u64,
                report.totals.completed,
                "duplicate session tickets under seed {}", seed
            );

            // Crashes force re-entries (or rejections), never losses:
            // with a nonzero hazard and any completions at all, the
            // re-entry path must have been exercised or every crashed
            // client rejected.
            if report.totals.crashes > 0 {
                prop_assert!(
                    report.totals.reentries > 0 || report.totals.rejected > 0,
                    "crashes with neither re-entries nor rejections: {:?}",
                    report.totals
                );
            }
        }

        /// Determinism of the full service pipeline: bit-identical
        /// reports per (config, seed) — totals, every window row, every
        /// recorded ticket — across independently built worlds.
        #[test]
        fn service_reports_are_bit_identical_per_seed(
            seed in 0u64..10_000,
            hazard in 0.0f64..0.008,
        ) {
            let cfg = storm_cfg(seed, 3, 80, 30.0, hazard, 2, 2, 8);
            let world_a = ServiceWorld::new(&cfg);
            let a = ServiceHarness::new(&world_a, &cfg).run();
            let world_b = ServiceWorld::new(&cfg);
            let b = ServiceHarness::new(&world_b, &cfg).run();
            prop_assert_eq!(a.totals, b.totals);
            prop_assert_eq!(a.windows, b.windows);
            prop_assert_eq!(a.names, b.names);
        }

        /// Differential determinism of the sharded harness: with
        /// `shards = 1` the mega path must reproduce the unsharded
        /// harness **bit for bit** — totals, every window row, every
        /// ticket, the drain state — across random service shapes,
        /// hazards and admission bounds. This is the refactor's safety
        /// net: the sharded control plane is the only code path left,
        /// so any divergence here is a behavior change.
        #[test]
        fn mega_single_shard_is_bit_identical_to_unsharded(
            seed in 0u64..10_000,
            slots in 2usize..6,
            clients in 40u64..160,
            mean_gap in 2.0f64..400.0,
            hazard in 0.0f64..0.01,
            max_inflight in 1usize..6,
            queue_capacity in 0usize..6,
            waiting_capacity in 1usize..32,
        ) {
            let cfg = storm_cfg(
                seed, slots, clients, mean_gap, hazard,
                max_inflight, queue_capacity, waiting_capacity,
            );
            let world = ServiceWorld::new(&cfg);
            let flat = ServiceHarness::new(&world, &cfg).run();
            let mcfg = MegaServiceConfig { base: cfg, shards: 1 };
            let mega_world = MegaServiceWorld::new(&mcfg);
            let mega = MegaServiceHarness::new(&mega_world, &mcfg).run();
            prop_assert_eq!(&mega.report.totals, &flat.totals);
            prop_assert_eq!(&mega.report.windows, &flat.windows);
            prop_assert_eq!(&mega.report.names, &flat.names);
            prop_assert_eq!(mega.report.in_system, flat.in_system);
            prop_assert_eq!(mega.shard_totals, vec![flat.totals]);
        }

        /// Checker-on crash storms (`--features check`): the dynamic
        /// footprint checker rides along the full service battery —
        /// naming, store&collect and deposit machines under crashes,
        /// re-entries and load shedding — and must observe every
        /// granted operation without reporting a single violation.
        #[cfg(feature = "check")]
        #[test]
        fn crashy_sessions_stay_inside_declared_footprints(
            seed in 0u64..10_000,
            slots in 2usize..6,
            clients in 40u64..120,
            hazard in 0.0f64..0.01,
        ) {
            use exclusive_selection::sim::AccessChecker;
            let cfg = storm_cfg(seed, slots, clients, 8.0, hazard, slots, 2, 8);
            let world = ServiceWorld::new(&cfg);
            let checker =
                AccessChecker::for_instance(&world, cfg.slots, world.num_registers())
                    .expect("static pass accepts the service world");
            let mut harness = ServiceHarness::new(&world, &cfg);
            harness.install_checker(checker);
            harness.prime();
            let drained = harness.run_until(u64::MAX);
            prop_assert!(!drained, "bounded arrivals must drain");
            let c = harness.checker().unwrap();
            prop_assert!(c.trial_ops() > 0, "checker observed nothing");
            prop_assert_eq!(
                harness.checker_violations(), 0,
                "service run violated its footprints: {:?}",
                c.violations()
            );
        }

        /// Determinism of multi-shard runs: any `shards > 1` fleet is
        /// bit-identical to itself across independently built worlds
        /// with the same seed — global roll-up, windows, namespaced
        /// tickets and per-shard totals alike — and its accounting
        /// closes after the drain.
        #[test]
        fn mega_reports_are_bit_identical_per_seed(
            seed in 0u64..10_000,
            shards in 2usize..6,
            hazard in 0.0f64..0.008,
        ) {
            let mcfg = MegaServiceConfig {
                base: storm_cfg(seed, 3, 120, 12.0, hazard, 2, 2, 8),
                shards,
            };
            let world_a = MegaServiceWorld::new(&mcfg);
            let a = MegaServiceHarness::new(&world_a, &mcfg).run();
            let world_b = MegaServiceWorld::new(&mcfg);
            let b = MegaServiceHarness::new(&world_b, &mcfg).run();
            prop_assert_eq!(&a.report.totals, &b.report.totals);
            prop_assert_eq!(&a.report.windows, &b.report.windows);
            prop_assert_eq!(&a.report.names, &b.report.names);
            prop_assert_eq!(&a.shard_totals, &b.shard_totals);
            prop_assert!(a.report.accounted());
            prop_assert!(a.rolled_up());
        }
    }
}
