//! The machine-pool contract: pooled `MachineSet` trials (machines built
//! once, `reset` in place, enum dispatch, incremental pending set) are
//! **trace-identical** to trials over freshly boxed machines, for every
//! algorithm family × adversary policy × seed — including the wait-free
//! deposit family's two interleaved activities, with and without
//! serve-only helpers — and per-trial [`Metrics`] under engine+pool
//! reuse match fresh-engine runs bit for bit.

use exclusive_selection::sim::policy::{
    Bursty, CrashAfter, CrashStorm, Policy, RandomPolicy, RoundRobin,
};
use exclusive_selection::sim::{AlgoSet, MachinePool, MachineSet, Metrics, SetOutput, StepEngine};
use exclusive_selection::{
    AdaptiveRename, AlmostAdaptive, BasicRename, Crash, EfficientRename, Majority, MoirAnderson,
    Pid, PolyLogRename, RegAlloc, RegId, RenameConfig, SnapshotRename, StepMachine, StoreCollect,
};
use exsel_shm::SlabBank;
use exsel_unbounded::{AltruisticDeposit, UnboundedNaming};
use proptest::prelude::*;

/// Every algorithm family as an [`AlgoSet`], with its register count and
/// contender inputs.
fn families(cfg: &RenameConfig) -> Vec<(&'static str, usize, Vec<u64>, AlgoSet)> {
    let k = 4usize;
    let n_names = 64usize;
    let originals: Vec<u64> = (0..k as u64).map(|i| i * 13 + 2).collect();
    let mut out = Vec::new();
    let mut with = |label: &'static str, build: &dyn Fn(&mut RegAlloc) -> AlgoSet| {
        let mut alloc = RegAlloc::new();
        let algo = build(&mut alloc);
        out.push((label, alloc.total(), originals.clone(), algo));
    };
    with("moir-anderson", &|a| {
        AlgoSet::MoirAnderson(MoirAnderson::new(a, k))
    });
    with("majority", &|a| {
        AlgoSet::Majority(Majority::new(a, n_names, k, cfg))
    });
    with("snapshot", &|a| {
        AlgoSet::SnapshotRename(SnapshotRename::new(a, k))
    });
    with("basic", &|a| {
        AlgoSet::Rename(Box::new(BasicRename::new(a, n_names, k, cfg)))
    });
    with("polylog", &|a| {
        AlgoSet::Rename(Box::new(PolyLogRename::new(a, n_names, k, cfg)))
    });
    with("almost-adaptive", &|a| {
        AlgoSet::Rename(Box::new(AlmostAdaptive::new(a, n_names, 4 * k, cfg)))
    });
    with("adaptive", &|a| {
        AlgoSet::Rename(Box::new(AdaptiveRename::new(a, 4 * k, cfg)))
    });
    with("efficient", &|a| {
        AlgoSet::Rename(Box::new(EfficientRename::new(a, k, cfg)))
    });
    with("store-known", &|a| {
        AlgoSet::StoreCollect(StoreCollect::known(a, k, n_names, cfg))
    });
    with("store-adaptive", &|a| {
        AlgoSet::StoreCollect(StoreCollect::adaptive(a, k, cfg))
    });
    with("naming", &|a| AlgoSet::Naming {
        naming: UnboundedNaming::new(a, k),
        rounds: 2,
    });
    with("deposit", &|a| AlgoSet::Deposit {
        repo: AltruisticDeposit::new(a, 4, 512),
        rounds: 2,
        servers: 0,
    });
    with("deposit-serve", &|a| AlgoSet::Deposit {
        repo: AltruisticDeposit::new(a, 4, 512),
        rounds: 2,
        servers: 1,
    });
    out
}

/// The adversary policies of the suite, rebuilt per (policy, seed).
fn policies(seed: u64, k: usize) -> Vec<(&'static str, Box<dyn Policy>)> {
    let budget = k - 1;
    vec![
        ("round-robin", Box::new(RoundRobin::new())),
        ("random", Box::new(RandomPolicy::new(seed))),
        (
            "crash-storm",
            Box::new(CrashStorm::new(
                Box::new(RandomPolicy::new(seed)),
                !seed,
                0.03,
                budget,
            )),
        ),
        (
            "crash-after",
            Box::new(CrashAfter::new(
                Box::new(RandomPolicy::new(seed)),
                25,
                budget,
            )),
        ),
        ("bursty", Box::new(Bursty::new(seed, 5))),
    ]
}

type BoxedMachine<'a> = Box<dyn StepMachine<Output = SetOutput> + 'a>;

/// Freshly boxed machines, the pre-pool shape: one heap allocation per
/// machine per trial.
fn boxed_machines<'a>(algo: &'a AlgoSet, originals: &[u64]) -> Vec<BoxedMachine<'a>> {
    originals
        .iter()
        .enumerate()
        .map(|(p, &orig)| -> BoxedMachine<'a> { Box::new(algo.begin(Pid(p), orig)) })
        .collect()
}

#[test]
fn pooled_trials_are_trace_identical_to_fresh_boxed_machines() {
    let cfg = RenameConfig::default();
    for (label, regs, originals, algo) in families(&cfg) {
        let k = originals.len();
        let mut boxed_engine = StepEngine::reusable(regs)
            .record_trace(true)
            .panic_on_budget(false);
        let mut pooled_engine = StepEngine::reusable(regs)
            .record_trace(true)
            .panic_on_budget(false);
        let mut pool: MachinePool<MachineSet<'_>> = algo.pool(&originals);
        for seed in 0..3u64 {
            for (policy_label, mut policy) in policies(seed, k) {
                let tag = format!("{label} × {policy_label} × seed {seed}");
                let fresh =
                    boxed_engine.run_trial(policy.as_mut(), boxed_machines(&algo, &originals));

                let (_, mut policy) = policies(seed, k)
                    .into_iter()
                    .find(|(l, _)| *l == policy_label)
                    .unwrap();
                pooled_engine.run_pool(policy.as_mut(), &mut pool);

                assert_eq!(
                    fresh.trace.as_deref(),
                    pooled_engine.trace(),
                    "{tag}: traces diverged"
                );
                assert_eq!(fresh.steps, pool.steps(), "{tag}: steps diverged");
                let pooled_results: Vec<Result<SetOutput, Crash>> = pool
                    .results()
                    .iter()
                    .map(|r| r.clone().expect("result recorded"))
                    .collect();
                assert_eq!(fresh.results, pooled_results, "{tag}: results diverged");
                assert_eq!(
                    fresh.crashed,
                    pooled_engine.adversary_crashed().collect::<Vec<_>>(),
                    "{tag}: crash sets diverged"
                );
                assert_eq!(
                    fresh.budget_crashed,
                    pooled_engine.budget_crashed().collect::<Vec<_>>(),
                    "{tag}: budget-crash sets diverged"
                );
            }
        }
    }
}

#[test]
fn metrics_under_engine_and_pool_reuse_match_fresh_runs_bit_for_bit() {
    // `ops_per_register`, `max_contention` and the crash-cause counters
    // of a reused engine + pool must equal a fresh engine + fresh boxed
    // machines on every trial.
    let cfg = RenameConfig::default();
    let mut alloc = RegAlloc::new();
    let algo = AlgoSet::Majority(Majority::new(&mut alloc, 128, 6, &cfg));
    let originals: Vec<u64> = (0..6u64).map(|i| i * 19 + 1).collect();
    let regs = alloc.total();

    let mut reused = StepEngine::reusable(regs)
        .measure_contention(true)
        .panic_on_budget(false);
    let mut pool = algo.pool(&originals);

    for seed in 0..8u64 {
        let mut policy = CrashStorm::new(Box::new(RandomPolicy::new(seed)), !seed, 0.04, 3);
        reused.run_pool(&mut policy, &mut pool);
        let reused_metrics: Metrics = reused.metrics().clone();

        let mut fresh = StepEngine::reusable(regs)
            .measure_contention(true)
            .panic_on_budget(false);
        let mut policy = CrashStorm::new(Box::new(RandomPolicy::new(seed)), !seed, 0.04, 3);
        fresh.run_trial(&mut policy, boxed_machines(&algo, &originals));

        assert_eq!(
            &reused_metrics,
            fresh.metrics(),
            "seed {seed}: metrics diverged under reuse"
        );
        assert_eq!(
            reused_metrics.ops_per_register.len(),
            regs,
            "seed {seed}: histogram width"
        );
    }
}

#[test]
fn slab_bank_is_bit_identical_to_arc_bank_for_every_family_and_policy() {
    // The slab register bank (inline small payloads + generation-tagged
    // slab handles for snapshot records) must be observationally
    // indistinguishable from the Arc-per-`Word` oracle: same traces,
    // same results and steps, same crash sets, and the same final
    // register bank word for word — for all 13 pooled families under
    // all 5 adversary policies.
    let cfg = RenameConfig::default();
    for (label, regs, originals, algo) in families(&cfg) {
        let k = originals.len();
        let mut arc_engine = StepEngine::reusable(regs)
            .record_trace(true)
            .panic_on_budget(false);
        let mut slab_engine = StepEngine::reusable_with(regs, SlabBank::new())
            .record_trace(true)
            .panic_on_budget(false);
        let mut pool: MachinePool<MachineSet<'_>> = algo.pool(&originals);
        for seed in 0..2u64 {
            for (policy_label, mut policy) in policies(seed, k) {
                let tag = format!("{label} × {policy_label} × seed {seed}");
                arc_engine.run_pool(policy.as_mut(), &mut pool);
                let arc_trace = arc_engine.trace().expect("trace recorded").to_vec();
                let arc_steps = pool.steps().to_vec();
                let arc_results = pool.results().to_vec();
                let arc_crashed: Vec<Pid> = arc_engine.adversary_crashed().collect();
                let arc_budget: Vec<Pid> = arc_engine.budget_crashed().collect();
                let arc_bank: Vec<_> = (0..regs)
                    .map(|r| arc_engine.load_register(RegId(r)))
                    .collect();

                let (_, mut policy) = policies(seed, k)
                    .into_iter()
                    .find(|(l, _)| *l == policy_label)
                    .unwrap();
                slab_engine.run_pool(policy.as_mut(), &mut pool);

                assert_eq!(
                    arc_trace.as_slice(),
                    slab_engine.trace().expect("trace recorded"),
                    "{tag}: traces diverged"
                );
                assert_eq!(arc_steps, pool.steps(), "{tag}: steps diverged");
                assert_eq!(arc_results, pool.results(), "{tag}: results diverged");
                assert_eq!(
                    arc_crashed,
                    slab_engine.adversary_crashed().collect::<Vec<_>>(),
                    "{tag}: crash sets diverged"
                );
                assert_eq!(
                    arc_budget,
                    slab_engine.budget_crashed().collect::<Vec<_>>(),
                    "{tag}: budget-crash sets diverged"
                );
                for (r, arc_word) in arc_bank.iter().enumerate() {
                    assert_eq!(
                        *arc_word,
                        slab_engine.load_register(RegId(r)),
                        "{tag}: final banks diverged at register {r}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Crashes crossed with slab slot reuse: consecutive pooled trials
    /// on one slab engine free and re-allocate snapshot slots (each
    /// reset bumps the freed slots' generations), while the adversary
    /// crashes machines mid-update so displaced records die at random
    /// program points. Every trial must still be bit-identical to the
    /// Arc oracle — a stale slab handle surviving reuse would surface
    /// as a diverged trace, result or final bank.
    #[test]
    fn crashes_cross_slab_generation_reuse(
        seed in any::<u64>(),
        crash_p in 0.0f64..0.25,
        family in 0usize..3,
    ) {
        let k = 4usize;
        let mut alloc = RegAlloc::new();
        // The three snapshot-heaviest families — the only ones that
        // park `Word::Snap` records in slab slots at all.
        let algo = match family {
            0 => AlgoSet::SnapshotRename(SnapshotRename::new(&mut alloc, k)),
            1 => AlgoSet::Naming {
                naming: UnboundedNaming::new(&mut alloc, k),
                rounds: 2,
            },
            _ => AlgoSet::Deposit {
                repo: AltruisticDeposit::new(&mut alloc, k, 512),
                rounds: 2,
                servers: 0,
            },
        };
        let regs = alloc.total();
        let originals: Vec<u64> = (0..k as u64).map(|i| i * 13 + 2).collect();
        let mut pool: MachinePool<MachineSet<'_>> = algo.pool(&originals);
        let mut arc_engine = StepEngine::reusable(regs)
            .record_trace(true)
            .panic_on_budget(false);
        let mut slab_engine = StepEngine::reusable_with(regs, SlabBank::new())
            .record_trace(true)
            .panic_on_budget(false);

        for trial in 0..3u64 {
            let trial_seed = seed.wrapping_add(trial);
            let mut policy = CrashStorm::new(
                Box::new(RandomPolicy::new(trial_seed)),
                !trial_seed,
                crash_p,
                k - 1,
            );
            arc_engine.run_pool(&mut policy, &mut pool);
            let arc_trace = arc_engine.trace().expect("trace recorded").to_vec();
            let arc_results = pool.results().to_vec();
            let arc_bank: Vec<_> = (0..regs)
                .map(|r| arc_engine.load_register(RegId(r)))
                .collect();

            let mut policy = CrashStorm::new(
                Box::new(RandomPolicy::new(trial_seed)),
                !trial_seed,
                crash_p,
                k - 1,
            );
            slab_engine.run_pool(&mut policy, &mut pool);

            prop_assert_eq!(
                arc_trace.as_slice(),
                slab_engine.trace().expect("trace recorded"),
                "trial {}: traces diverged", trial
            );
            prop_assert_eq!(
                arc_results.as_slice(),
                pool.results(),
                "trial {}: results diverged", trial
            );
            for (r, arc_word) in arc_bank.iter().enumerate() {
                prop_assert_eq!(
                    arc_word,
                    &slab_engine.load_register(RegId(r)),
                    "trial {}: final banks diverged at register {}", trial, r
                );
            }
        }
        // Snapshot-backed families must actually have parked records in
        // slab slots — otherwise this property exercised nothing.
        prop_assert!(slab_engine.bank().peak_slots() > 0);
    }
}

#[test]
fn engine_trace_accessor_tracks_where_the_trace_lives() {
    // Boxed `run_trial` moves the trace into its outcome — the engine
    // accessor must then report None, not an empty schedule; pooled
    // trials leave it in place.
    let cfg = RenameConfig::default();
    let mut alloc = RegAlloc::new();
    let algo = AlgoSet::MoirAnderson(MoirAnderson::new(&mut alloc, 3));
    let originals = [1u64, 2, 3];
    let mut engine = StepEngine::reusable(alloc.total()).record_trace(true);
    let _ = cfg;

    let mut policy = RoundRobin::new();
    let outcome = engine.run_trial(&mut policy, boxed_machines(&algo, &originals));
    assert!(outcome.trace.as_ref().is_some_and(|t| !t.is_empty()));
    assert_eq!(engine.trace(), None, "moved trace must not read as empty");

    let mut pool = algo.pool(&originals);
    let mut policy = RoundRobin::new();
    engine.run_pool(&mut policy, &mut pool);
    assert!(engine.trace().is_some_and(|t| !t.is_empty()));
}
