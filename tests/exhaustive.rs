//! Exhaustive schedule-space verification (stateless model checking) of
//! the fine-grained primitives at small sizes — every interleaving, not a
//! sample. This is the strongest evidence this stack offers for the
//! safety lemmas: Lemma 1 (compete-for-register), the splitter property,
//! and snapshot self-inclusion are checked over the *complete* schedule
//! tree of 2–3 process programs.

use exclusive_selection::renaming::{MoirAnderson, SlotBank};
use exclusive_selection::shm::Snapshot;
use exclusive_selection::sim::explore::{explore, explore_engine};
use exclusive_selection::{Outcome, RegAlloc, StepMachine, StepRename, Word};

#[test]
fn lemma1_exclusive_wins_every_interleaving_two_contenders() {
    // Both backends cover the identical tree; the thread-backed run keeps
    // that backend honest, the engine run is the fast path.
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 1);
    let check = |outcome: &exclusive_selection::sim::SimOutcome<bool>| {
        let winners = outcome
            .results
            .iter()
            .filter(|r| *r.as_ref().unwrap())
            .count();
        assert!(winners <= 1, "two winners in one interleaving");
    };
    let threaded = explore(
        alloc.total(),
        2,
        100_000,
        |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1),
        check,
    );
    let engine = explore_engine(
        alloc.total(),
        2,
        100_000,
        |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
        check,
    );
    assert!(
        threaded.complete && engine.complete,
        "schedule tree not fully covered"
    );
    assert_eq!(
        threaded.executions, engine.executions,
        "backends saw different trees"
    );
    assert!(engine.executions >= 2, "suspiciously few schedules");
}

#[test]
fn lemma1_exclusive_wins_every_interleaving_three_contenders() {
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 1);
    let report = explore_engine(
        alloc.total(),
        3,
        2_000_000,
        |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
        |outcome| {
            let winners = outcome
                .results
                .iter()
                .filter(|r| *r.as_ref().unwrap())
                .count();
            assert!(winners <= 1, "two winners in one interleaving");
        },
    );
    assert!(report.complete, "schedule tree not fully covered");
}

/// A bank walk: compete for slot 0, then slot 1 if lost, and so on. The
/// machine form of the first-win loop every renaming algorithm runs.
struct SlotWalk {
    bank: SlotBank,
    token: u64,
    slot: usize,
    inner: exclusive_selection::renaming::CompeteOp,
}

impl SlotWalk {
    fn new(bank: &SlotBank, token: u64) -> Self {
        SlotWalk {
            bank: bank.clone(),
            token,
            slot: 0,
            inner: bank.begin_compete(0, token),
        }
    }
}

impl StepMachine for SlotWalk {
    type Output = Option<usize>;
    fn op(&self) -> exclusive_selection::ShmOp {
        self.inner.op()
    }
    fn advance(&mut self, input: &Word) -> exclusive_selection::Poll<Option<usize>> {
        use exclusive_selection::Poll;
        match self.inner.advance(input) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(true) => Poll::Ready(Some(self.slot)),
            Poll::Ready(false) => {
                self.slot += 1;
                if self.slot < self.bank.len() {
                    self.inner = self.bank.begin_compete(self.slot, self.token);
                    Poll::Pending
                } else {
                    Poll::Ready(None)
                }
            }
        }
    }
}

#[test]
fn lemma1_walks_exclusive_every_interleaving_two_contenders_three_slots() {
    // Up to 15 ops per process, schedule-tree depth 26, ~185k complete
    // executions — a depth the thread-backed explorer cannot finish in
    // reasonable test time; on the engine it is routine. Every
    // interleaving must keep slot wins exclusive.
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 3);
    let report = explore_engine(
        alloc.total(),
        2,
        1_000_000,
        |pid| Box::new(SlotWalk::new(&bank, pid.0 as u64 + 1)),
        |outcome| {
            let wins: Vec<usize> = outcome
                .results
                .iter()
                .filter_map(|r| *r.as_ref().unwrap())
                .collect();
            let set: std::collections::BTreeSet<usize> = wins.iter().copied().collect();
            assert_eq!(set.len(), wins.len(), "a slot won twice: {wins:?}");
        },
    );
    assert!(report.complete, "schedule tree not fully covered");
    assert!(
        report.executions > 100_000,
        "only {} schedules",
        report.executions
    );
}

#[test]
fn splitter_grid_exclusive_every_interleaving_k2() {
    let mut alloc = RegAlloc::new();
    let algo = MoirAnderson::new(&mut alloc, 2);
    let report = explore_engine(
        alloc.total(),
        2,
        500_000,
        |pid| {
            Box::new(
                algo.begin_rename(pid, pid.0 as u64 + 1)
                    .map_output(Outcome::name),
            )
        },
        |outcome| {
            let names: Vec<u64> = outcome
                .results
                .iter()
                .map(|r| {
                    r.as_ref()
                        .unwrap()
                        .expect("within capacity: both must stop")
                })
                .collect();
            assert_ne!(names[0], names[1], "duplicate names");
            assert!(names.iter().all(|&m| (1..=3).contains(&m)));
        },
    );
    assert!(report.complete);
    // The grid program is 4–8 ops per process: a real tree, not a toy.
    assert!(
        report.executions > 50,
        "only {} schedules",
        report.executions
    );
}

#[test]
fn snapshot_self_inclusion_every_interleaving() {
    // p0 updates its component; p1 updates its component then scans: the
    // scan must include p1's own value, under every interleaving of the
    // two operations' register accesses.
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, 2);
    let report = explore(
        alloc.total(),
        2,
        500_000,
        |ctx| {
            let slot = ctx.pid().0;
            snap.update(ctx, slot, Word::Int(slot as u64 + 10))?;
            if slot == 1 {
                let view = snap.scan(ctx)?;
                return Ok(view[1].as_int());
            }
            Ok(None)
        },
        |outcome| {
            let scanned = outcome.results[1].as_ref().unwrap();
            assert_eq!(*scanned, Some(11), "scan missed own completed update");
        },
    );
    assert!(report.complete);
    assert!(
        report.executions > 100,
        "only {} schedules",
        report.executions
    );
}

#[test]
fn snapshot_validity_every_interleaving() {
    // p0 scans while p1 performs two updates: the scanned component is
    // one of ⊥ → 10 → 20 (never a torn or resurrected value), under
    // every interleaving.
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, 2);
    let report = explore(
        alloc.total(),
        2,
        2_000_000,
        |ctx| {
            if ctx.pid().0 == 0 {
                let view = snap.scan(ctx)?;
                Ok(view[1].as_int())
            } else {
                snap.update(ctx, 1, Word::Int(10))?;
                snap.update(ctx, 1, Word::Int(20))?;
                Ok(None)
            }
        },
        |outcome| {
            let scanned = outcome.results[0].as_ref().unwrap();
            assert!(
                matches!(scanned, None | Some(10) | Some(20)),
                "invalid scanned value {scanned:?}"
            );
        },
    );
    assert!(report.complete);
}

// ---------------------------------------------------------------------
// Reduced exploration differentials: the `exsel_sim::reduce` enumerator
// against the unreduced oracle, across three machine families. The
// oracle flag (`ReduceConfig::off`) must replay the exact unreduced
// tree; sleep sets may drop interleavings but never terminal states or
// verdicts; the full symmetry stack must preserve pass/fail.
// ---------------------------------------------------------------------

use exclusive_selection::renaming::CompeteOp;
use exclusive_selection::shm::Pid;
use exclusive_selection::sim::explore::explore_pool_with;
use exclusive_selection::sim::{
    explore_pool_reduced, explore_pool_sleep, replay_pool, MachinePool, ReduceConfig, StepEngine,
};
use exclusive_selection::storecollect::{FirstStoreOp, StoreCollect};
use exclusive_selection::unbounded::AltruisticDeposit;
use std::collections::BTreeSet;

/// At most one contender wins the slot.
fn compete_ok(pool: &MachinePool<CompeteOp>) -> bool {
    pool.completed().filter(|(_, won)| **won).count() <= 1
}

/// The per-process results vector — the terminal-state signature the
/// sleep-set differential compares as a set.
fn result_signature<M: StepMachine>(pool: &MachinePool<M>) -> Vec<String>
where
    M::Output: std::fmt::Debug,
{
    pool.results().iter().map(|r| format!("{r:?}")).collect()
}

/// A 3-contender compete pool plus its engine.
fn compete3() -> (StepEngine, MachinePool<CompeteOp>) {
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 1);
    let pool: MachinePool<CompeteOp> = (1..=3u64).map(|t| bank.begin_compete(0, t)).collect();
    (StepEngine::reusable(alloc.total()), pool)
}

#[test]
fn oracle_flag_replays_the_unreduced_tree_across_families() {
    // Compete, 3 contenders: the committed 73,608-execution tree.
    let (mut engine, mut pool) = compete3();
    let unreduced = explore_pool_with(&mut engine, &mut pool, u64::MAX, |_| {});
    let oracle = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::off(u64::MAX),
        compete_ok,
    );
    assert_eq!(unreduced.executions, 73_608);
    assert_eq!(oracle.executions, unreduced.executions);
    assert_eq!(oracle.execs_pruned, 0);
    assert!(oracle.complete && oracle.minimized.is_none());

    // Store&collect setting (i), 2 contenders (the 3-proc oracle tree
    // holds 17.15M executions — release-mode bench territory, see the
    // explore-reduced scenario).
    let mut alloc = RegAlloc::new();
    let sc = StoreCollect::known(
        &mut alloc,
        2,
        2,
        &exclusive_selection::RenameConfig::default(),
    );
    let mut pool: MachinePool<FirstStoreOp<'_>> = (0..2)
        .map(|p| sc.begin_first_store(Pid(p), p as u64 + 1, 7))
        .collect();
    let mut engine = StepEngine::reusable(alloc.total());
    let unreduced = explore_pool_with(&mut engine, &mut pool, u64::MAX, |_| {});
    let oracle = explore_pool_sleep(&mut engine, &mut pool, &ReduceConfig::off(u64::MAX), |_| {
        true
    });
    assert_eq!(oracle.executions, unreduced.executions);
    assert!(oracle.complete);

    // Deposit, 3 serve-only machines (fixed event counts — depositor
    // machines have schedule-dependent depth and an astronomically
    // large unreduced tree even at 2 processes).
    let mut alloc = RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, 3, 6);
    let mut pool: MachinePool<_> = (0..3).map(|p| repo.begin_server(Pid(p), 2)).collect();
    let mut engine = StepEngine::reusable(alloc.total());
    let unreduced = explore_pool_with(&mut engine, &mut pool, u64::MAX, |_| {});
    let oracle = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::off(u64::MAX),
        |pool| pool.results().iter().all(|r| matches!(r, Some(Ok(None)))),
    );
    assert_eq!(oracle.executions, unreduced.executions);
    assert!(oracle.complete && oracle.minimized.is_none());
}

#[test]
fn sleep_sets_preserve_terminal_states_and_verdicts_across_families() {
    // Compete, 3 contenders: strictly fewer executions, identical
    // terminal-state set, identical verdict.
    let (mut engine, mut pool) = compete3();
    let mut oracle_sigs = BTreeSet::new();
    let oracle = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::off(u64::MAX),
        |pool| {
            oracle_sigs.insert(result_signature(pool));
            compete_ok(pool)
        },
    );
    let mut sleep_sigs = BTreeSet::new();
    let sleep = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::sleep_only(u64::MAX),
        |pool| {
            sleep_sigs.insert(result_signature(pool));
            compete_ok(pool)
        },
    );
    assert!(sleep.complete);
    assert!(
        sleep.executions * 5 <= oracle.executions,
        "sleep sets below the 5x floor: {} vs {}",
        sleep.executions,
        oracle.executions
    );
    assert_eq!(oracle_sigs, sleep_sigs, "sleep sets lost a terminal state");
    assert_eq!(oracle.minimized.is_some(), sleep.minimized.is_some());

    // Store&collect setting (i), 2 contenders.
    let mut alloc = RegAlloc::new();
    let sc = StoreCollect::known(
        &mut alloc,
        2,
        2,
        &exclusive_selection::RenameConfig::default(),
    );
    let mut pool: MachinePool<FirstStoreOp<'_>> = (0..2)
        .map(|p| sc.begin_first_store(Pid(p), p as u64 + 1, 7))
        .collect();
    let mut engine = StepEngine::reusable(alloc.total());
    let mut oracle_sigs = BTreeSet::new();
    explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::off(u64::MAX),
        |pool| {
            oracle_sigs.insert(result_signature(pool));
            true
        },
    );
    let mut sleep_sigs = BTreeSet::new();
    let sleep = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::sleep_only(u64::MAX),
        |pool| {
            sleep_sigs.insert(result_signature(pool));
            true
        },
    );
    assert!(sleep.complete);
    assert_eq!(oracle_sigs, sleep_sigs, "sleep sets lost a terminal state");

    // Deposit serve-only machines, 3 processes.
    let mut alloc = RegAlloc::new();
    let repo = AltruisticDeposit::new(&mut alloc, 3, 6);
    let mut pool: MachinePool<_> = (0..3).map(|p| repo.begin_server(Pid(p), 2)).collect();
    let mut engine = StepEngine::reusable(alloc.total());
    let oracle = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::off(u64::MAX),
        |pool| pool.results().iter().all(|r| matches!(r, Some(Ok(None)))),
    );
    let sleep = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::sleep_only(u64::MAX),
        |pool| pool.results().iter().all(|r| matches!(r, Some(Ok(None)))),
    );
    assert!(sleep.complete);
    assert!(sleep.executions <= oracle.executions);
    assert_eq!(oracle.minimized.is_some(), sleep.minimized.is_some());
}

#[test]
fn symmetry_stack_agrees_with_the_oracle_on_compete_verdicts() {
    // Passing checker: oracle and full stack both report no failure.
    let (mut engine, mut pool) = compete3();
    let tokens = vec![1u64, 2, 3];
    let oracle = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::off(u64::MAX),
        compete_ok,
    );
    let full = explore_pool_reduced(
        &mut engine,
        &mut pool,
        &ReduceConfig::full(&tokens, u64::MAX),
        compete_ok,
    );
    assert!(oracle.complete && full.complete);
    assert!(oracle.minimized.is_none() && full.minimized.is_none());
    assert!(full.states_canonical > 0);
    assert!(
        full.executions * 5 <= oracle.executions,
        "full stack below the 5x floor"
    );

    // Failing pid-symmetric checker ("nobody ever wins" — false): both
    // arms find a counterexample, and the minimized schedule replays to
    // the same failure.
    let nobody_wins =
        |pool: &MachinePool<CompeteOp>| pool.completed().filter(|(_, won)| **won).count() == 0;
    let oracle = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::off(u64::MAX),
        nobody_wins,
    );
    let full = explore_pool_reduced(
        &mut engine,
        &mut pool,
        &ReduceConfig::full(&tokens, u64::MAX),
        nobody_wins,
    );
    let schedule = full
        .minimized
        .clone()
        .expect("full stack found the failure");
    assert!(oracle.minimized.is_some(), "oracle missed the failure");
    replay_pool(&mut engine, &mut pool, &schedule);
    assert!(
        !nobody_wins(&pool),
        "minimized schedule no longer fails on replay"
    );
}

#[test]
fn shrinker_minimizes_a_seeded_known_bad_interleaving() {
    // Seeded known-bad checker: "contender 1's token never wins slot 0"
    // — false on schedules that let pid 0 through first. The minimized
    // schedule must (a) still fail on replay, (b) be a subsequence of
    // the raw failing schedule, (c) be deterministic across runs.
    let pid0_never_wins =
        |pool: &MachinePool<CompeteOp>| !matches!(pool.results()[0], Some(Ok(true)));
    let (mut engine, mut pool) = compete3();
    let raw = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig {
            shrink: false,
            ..ReduceConfig::sleep_only(u64::MAX)
        },
        pid0_never_wins,
    );
    let raw_schedule = raw.minimized.expect("raw failing schedule recorded");
    let first = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::sleep_only(u64::MAX),
        pid0_never_wins,
    );
    let second = explore_pool_sleep(
        &mut engine,
        &mut pool,
        &ReduceConfig::sleep_only(u64::MAX),
        pid0_never_wins,
    );
    let minimized = first.minimized.expect("shrinker produced a schedule");
    assert_eq!(
        Some(&minimized),
        second.minimized.as_ref(),
        "shrinker is nondeterministic"
    );
    assert!(minimized.len() <= raw_schedule.len());
    // Subsequence check: every minimized grant appears in the raw
    // schedule, in order.
    let mut rest = raw_schedule.as_slice();
    for pid in &minimized {
        let at = rest
            .iter()
            .position(|p| p == pid)
            .expect("minimized schedule is not a subsequence of the raw one");
        rest = &rest[at + 1..];
    }
    replay_pool(&mut engine, &mut pool, &minimized);
    assert!(
        !pid0_never_wins(&pool),
        "minimized schedule no longer fails on replay"
    );
}
