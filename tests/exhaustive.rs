//! Exhaustive schedule-space verification (stateless model checking) of
//! the fine-grained primitives at small sizes — every interleaving, not a
//! sample. This is the strongest evidence this stack offers for the
//! safety lemmas: Lemma 1 (compete-for-register), the splitter property,
//! and snapshot self-inclusion are checked over the *complete* schedule
//! tree of 2–3 process programs.

use exclusive_selection::renaming::{MoirAnderson, SlotBank};
use exclusive_selection::shm::Snapshot;
use exclusive_selection::sim::explore::{explore, explore_engine};
use exclusive_selection::{Outcome, RegAlloc, StepMachine, StepRename, Word};

#[test]
fn lemma1_exclusive_wins_every_interleaving_two_contenders() {
    // Both backends cover the identical tree; the thread-backed run keeps
    // that backend honest, the engine run is the fast path.
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 1);
    let check = |outcome: &exclusive_selection::sim::SimOutcome<bool>| {
        let winners = outcome
            .results
            .iter()
            .filter(|r| *r.as_ref().unwrap())
            .count();
        assert!(winners <= 1, "two winners in one interleaving");
    };
    let threaded = explore(
        alloc.total(),
        2,
        100_000,
        |ctx| bank.compete(ctx, 0, ctx.pid().0 as u64 + 1),
        check,
    );
    let engine = explore_engine(
        alloc.total(),
        2,
        100_000,
        |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
        check,
    );
    assert!(
        threaded.complete && engine.complete,
        "schedule tree not fully covered"
    );
    assert_eq!(
        threaded.executions, engine.executions,
        "backends saw different trees"
    );
    assert!(engine.executions >= 2, "suspiciously few schedules");
}

#[test]
fn lemma1_exclusive_wins_every_interleaving_three_contenders() {
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 1);
    let report = explore_engine(
        alloc.total(),
        3,
        2_000_000,
        |pid| Box::new(bank.begin_compete(0, pid.0 as u64 + 1)),
        |outcome| {
            let winners = outcome
                .results
                .iter()
                .filter(|r| *r.as_ref().unwrap())
                .count();
            assert!(winners <= 1, "two winners in one interleaving");
        },
    );
    assert!(report.complete, "schedule tree not fully covered");
}

/// A bank walk: compete for slot 0, then slot 1 if lost, and so on. The
/// machine form of the first-win loop every renaming algorithm runs.
struct SlotWalk {
    bank: SlotBank,
    token: u64,
    slot: usize,
    inner: exclusive_selection::renaming::CompeteOp,
}

impl SlotWalk {
    fn new(bank: &SlotBank, token: u64) -> Self {
        SlotWalk {
            bank: bank.clone(),
            token,
            slot: 0,
            inner: bank.begin_compete(0, token),
        }
    }
}

impl StepMachine for SlotWalk {
    type Output = Option<usize>;
    fn op(&self) -> exclusive_selection::ShmOp {
        self.inner.op()
    }
    fn advance(&mut self, input: &Word) -> exclusive_selection::Poll<Option<usize>> {
        use exclusive_selection::Poll;
        match self.inner.advance(input) {
            Poll::Pending => Poll::Pending,
            Poll::Ready(true) => Poll::Ready(Some(self.slot)),
            Poll::Ready(false) => {
                self.slot += 1;
                if self.slot < self.bank.len() {
                    self.inner = self.bank.begin_compete(self.slot, self.token);
                    Poll::Pending
                } else {
                    Poll::Ready(None)
                }
            }
        }
    }
}

#[test]
fn lemma1_walks_exclusive_every_interleaving_two_contenders_three_slots() {
    // Up to 15 ops per process, schedule-tree depth 26, ~185k complete
    // executions — a depth the thread-backed explorer cannot finish in
    // reasonable test time; on the engine it is routine. Every
    // interleaving must keep slot wins exclusive.
    let mut alloc = RegAlloc::new();
    let bank = SlotBank::new(&mut alloc, 3);
    let report = explore_engine(
        alloc.total(),
        2,
        1_000_000,
        |pid| Box::new(SlotWalk::new(&bank, pid.0 as u64 + 1)),
        |outcome| {
            let wins: Vec<usize> = outcome
                .results
                .iter()
                .filter_map(|r| *r.as_ref().unwrap())
                .collect();
            let set: std::collections::BTreeSet<usize> = wins.iter().copied().collect();
            assert_eq!(set.len(), wins.len(), "a slot won twice: {wins:?}");
        },
    );
    assert!(report.complete, "schedule tree not fully covered");
    assert!(
        report.executions > 100_000,
        "only {} schedules",
        report.executions
    );
}

#[test]
fn splitter_grid_exclusive_every_interleaving_k2() {
    let mut alloc = RegAlloc::new();
    let algo = MoirAnderson::new(&mut alloc, 2);
    let report = explore_engine(
        alloc.total(),
        2,
        500_000,
        |pid| {
            Box::new(
                algo.begin_rename(pid, pid.0 as u64 + 1)
                    .map_output(Outcome::name),
            )
        },
        |outcome| {
            let names: Vec<u64> = outcome
                .results
                .iter()
                .map(|r| {
                    r.as_ref()
                        .unwrap()
                        .expect("within capacity: both must stop")
                })
                .collect();
            assert_ne!(names[0], names[1], "duplicate names");
            assert!(names.iter().all(|&m| (1..=3).contains(&m)));
        },
    );
    assert!(report.complete);
    // The grid program is 4–8 ops per process: a real tree, not a toy.
    assert!(
        report.executions > 50,
        "only {} schedules",
        report.executions
    );
}

#[test]
fn snapshot_self_inclusion_every_interleaving() {
    // p0 updates its component; p1 updates its component then scans: the
    // scan must include p1's own value, under every interleaving of the
    // two operations' register accesses.
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, 2);
    let report = explore(
        alloc.total(),
        2,
        500_000,
        |ctx| {
            let slot = ctx.pid().0;
            snap.update(ctx, slot, Word::Int(slot as u64 + 10))?;
            if slot == 1 {
                let view = snap.scan(ctx)?;
                return Ok(view[1].as_int());
            }
            Ok(None)
        },
        |outcome| {
            let scanned = outcome.results[1].as_ref().unwrap();
            assert_eq!(*scanned, Some(11), "scan missed own completed update");
        },
    );
    assert!(report.complete);
    assert!(
        report.executions > 100,
        "only {} schedules",
        report.executions
    );
}

#[test]
fn snapshot_validity_every_interleaving() {
    // p0 scans while p1 performs two updates: the scanned component is
    // one of ⊥ → 10 → 20 (never a torn or resurrected value), under
    // every interleaving.
    let mut alloc = RegAlloc::new();
    let snap = Snapshot::new(&mut alloc, 2);
    let report = explore(
        alloc.total(),
        2,
        2_000_000,
        |ctx| {
            if ctx.pid().0 == 0 {
                let view = snap.scan(ctx)?;
                Ok(view[1].as_int())
            } else {
                snap.update(ctx, 1, Word::Int(10))?;
                snap.update(ctx, 1, Word::Int(20))?;
                Ok(None)
            }
        },
        |outcome| {
            let scanned = outcome.results[0].as_ref().unwrap();
            assert!(
                matches!(scanned, None | Some(10) | Some(20)),
                "invalid scanned value {scanned:?}"
            );
        },
    );
    assert!(report.complete);
}
